#include "analyze/race_detector.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "threads/tcb.h"

namespace dfth::analyze {
namespace {

// FastTrack epoch: one 64-bit word packing (fiber id, that fiber's clock).
// 24 bits of fiber id covers ~16M logical threads per run — two orders of
// magnitude past the largest benchmark — and 40 bits of clock covers ~10^12
// events per fiber. Epoch 0 means "no access recorded" (fiber ids start at
// 1 in both engines).
constexpr int kClockBits = 40;
constexpr std::uint64_t kClockMask = (1ull << kClockBits) - 1;

std::uint64_t pack_epoch(std::uint64_t tid, std::uint64_t clock) {
  return (tid << kClockBits) | (clock & kClockMask);
}
std::uint64_t epoch_tid(std::uint64_t e) { return e >> kClockBits; }
std::uint64_t epoch_clock(std::uint64_t e) { return e & kClockMask; }

std::uint64_t vc_get(const std::vector<std::uint64_t>& vc, std::uint64_t tid) {
  return tid < vc.size() ? vc[tid] : 0;
}

void vc_set(std::vector<std::uint64_t>& vc, std::uint64_t tid, std::uint64_t v) {
  if (vc.size() <= tid) vc.resize(tid + 1, 0);
  vc[tid] = v;
}

/// dst := dst ⊔ src (element-wise max).
void vc_join(std::vector<std::uint64_t>& dst, const std::vector<std::uint64_t>& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

/// `t`'s own clock component, lazily initialized to 1 so a Tcb driven
/// directly by unit tests (never through on_thread_start) still has a valid
/// epoch.
std::uint64_t self_clock(Tcb* t) {
  if (vc_get(t->race_vc, t->id) == 0) vc_set(t->race_vc, t->id, 1);
  return t->race_vc[t->id];
}

void tick(Tcb* t) { vc_set(t->race_vc, t->id, self_clock(t) + 1); }

/// Serial-order position of the fiber's current segment: its order-list tag
/// when the active scheduler maintains the list (AsyncDF family), else 0.
std::uint64_t order_tag(const Tcb* t) {
  return t->order.linked() ? t->order.tag : 0;
}

const char* site_or(const char* site) { return site ? site : "<unannotated>"; }

}  // namespace

RaceDetector::RaceDetector()
    : owned_shadow_(std::make_unique<ShadowTable>()) {
  shadow_ = owned_shadow_.get();
}

RaceDetector::RaceDetector(ShadowTable* shadow) : shadow_(shadow) {}

RaceDetector::~RaceDetector() = default;

RaceDetector& RaceDetector::instance() {
  // Leaked, like LockGraph: hooks may outlive main. Binds to TrackedHeap's
  // shadow table so df_free retires a freed block's cells.
  static RaceDetector* detector =
      new RaceDetector(&TrackedHeap::instance().shadow());
  return *detector;
}

// -- fork/join DAG edges --------------------------------------------------------

void RaceDetector::on_thread_start(Tcb* t, Tcb* parent) {
  std::lock_guard<SpinLock> g(mu_);
  if (parent) {
    t->race_vc = parent->race_vc;  // child sees everything pre-fork
    vc_set(t->race_vc, t->id, 1);
    tick(parent);  // parent's post-fork segment is concurrent with the child
  } else {
    t->race_vc.clear();
    vc_set(t->race_vc, t->id, 1);
  }
}

void RaceDetector::on_join(Tcb* joiner, Tcb* child) {
  std::lock_guard<SpinLock> g(mu_);
  vc_join(joiner->race_vc, child->race_vc);
}

// -- synchronization edges ------------------------------------------------------

void RaceDetector::on_acquire(Tcb* t, const void* obj) {
  std::lock_guard<SpinLock> g(mu_);
  auto it = sync_.find(obj);
  if (it != sync_.end()) vc_join(t->race_vc, it->second.rel);
}

void RaceDetector::on_release(Tcb* t, const void* obj) {
  std::lock_guard<SpinLock> g(mu_);
  vc_join(sync_[obj].rel, t->race_vc);
  tick(t);
}

void RaceDetector::on_rd_acquire(Tcb* t, const void* obj) {
  // Readers order after the last write release only — two read critical
  // sections of the same RwLock stay concurrent.
  on_acquire(t, obj);
}

void RaceDetector::on_rd_release(Tcb* t, const void* obj) {
  std::lock_guard<SpinLock> g(mu_);
  vc_join(sync_[obj].rd_rel, t->race_vc);
  tick(t);
}

void RaceDetector::on_wr_acquire(Tcb* t, const void* obj) {
  // A writer orders after the previous writer *and* every reader since.
  std::lock_guard<SpinLock> g(mu_);
  auto it = sync_.find(obj);
  if (it != sync_.end()) {
    vc_join(t->race_vc, it->second.rel);
    vc_join(t->race_vc, it->second.rd_rel);
  }
}

void RaceDetector::on_barrier_arrive(Tcb* t, const void* barrier,
                                     std::uint64_t gen, bool last) {
  std::lock_guard<SpinLock> g(mu_);
  BarrierClock& bc = barriers_[barrier];
  vc_join(bc.accum, t->race_vc);
  tick(t);
  if (last) {
    // Generation complete: publish the all-to-all clock. Parity indexing is
    // enough — a fiber cannot arrive at generation g+2 before every fiber
    // has left generation g (it would have to pass g+1 first, which needs
    // all parties), so at most two generations are ever in flight.
    bc.released[gen & 1] = std::move(bc.accum);
    bc.accum.clear();
  }
}

void RaceDetector::on_barrier_leave(Tcb* t, const void* barrier,
                                    std::uint64_t gen) {
  std::lock_guard<SpinLock> g(mu_);
  auto it = barriers_.find(barrier);
  if (it != barriers_.end()) vc_join(t->race_vc, it->second.released[gen & 1]);
}

// -- annotated memory accesses --------------------------------------------------

void RaceDetector::on_read(Tcb* t, const void* p, std::size_t bytes,
                           const char* site) {
  access(t, p, bytes, site, /*is_write=*/false);
}

void RaceDetector::on_write(Tcb* t, const void* p, std::size_t bytes,
                            const char* site) {
  access(t, p, bytes, site, /*is_write=*/true);
}

void RaceDetector::access(Tcb* t, const void* p, std::size_t bytes,
                          const char* site, bool is_write) {
  if (bytes == 0) return;
  std::lock_guard<SpinLock> g(mu_);
  std::lock_guard<std::mutex> sg(shadow_->mu());
  const std::uint64_t clk = self_clock(t);
  const std::uint64_t epoch = pack_epoch(t->id, clk);
  const VClock& vc = t->race_vc;
  const auto lo = reinterpret_cast<std::uintptr_t>(p) / kShadowGranuleBytes;
  const auto hi =
      (reinterpret_cast<std::uintptr_t>(p) + bytes - 1) / kShadowGranuleBytes;

  for (std::uintptr_t granule = lo; granule <= hi; ++granule) {
    ShadowCell& cell = shadow_->cell(granule);
    const void* addr = reinterpret_cast<const void*>(granule * kShadowGranuleBytes);
    auto prev_of = [&](const std::uint64_t e, const ShadowAccess& info,
                       bool prev_write) {
      return RaceAccess{epoch_tid(e), epoch_clock(e), prev_write, info.site,
                        info.order_tag};
    };
    const RaceAccess cur{t->id, clk, is_write, site, order_tag(t)};

    // Write-after-X checks.
    if (is_write) {
      if (cell.write_epoch == epoch) continue;  // same-segment rewrite
      if (cell.write_epoch != 0 &&
          epoch_clock(cell.write_epoch) > vc_get(vc, epoch_tid(cell.write_epoch))) {
        report_race(addr, prev_of(cell.write_epoch, cell.write_info, true), cur);
      }
      if (!cell.read_vc.empty()) {
        for (std::uint64_t u = 0; u < cell.read_vc.size(); ++u) {
          if (cell.read_vc[u] != 0 && cell.read_vc[u] > vc_get(vc, u)) {
            report_race(addr,
                        RaceAccess{u, cell.read_vc[u], false,
                                   cell.read_info.site, cell.read_info.order_tag},
                        cur);
            break;  // one representative read suffices per granule
          }
        }
      } else if (cell.read_epoch != 0 &&
                 epoch_clock(cell.read_epoch) > vc_get(vc, epoch_tid(cell.read_epoch))) {
        report_race(addr, prev_of(cell.read_epoch, cell.read_info, false), cur);
      }
      // The write dominates: collapse the read history (FastTrack's reset
      // keeps the cell O(1) again after a concurrent-read episode).
      cell.write_epoch = epoch;
      cell.write_info = {site, cur.order_tag};
      cell.read_epoch = 0;
      cell.read_vc.clear();
      continue;
    }

    // Read path.
    if (cell.read_epoch == epoch) continue;  // same-segment reread
    if (!cell.read_vc.empty() && vc_get(cell.read_vc, t->id) == clk) continue;
    if (cell.write_epoch != 0 &&
        epoch_clock(cell.write_epoch) > vc_get(vc, epoch_tid(cell.write_epoch))) {
      report_race(addr, prev_of(cell.write_epoch, cell.write_info, true), cur);
    }
    if (!cell.read_vc.empty()) {
      vc_set(cell.read_vc, t->id, clk);
    } else if (cell.read_epoch == 0 ||
               epoch_clock(cell.read_epoch) <=
                   vc_get(vc, epoch_tid(cell.read_epoch))) {
      // Totally ordered with the previous reader (or first reader): the
      // epoch fast path holds.
      cell.read_epoch = epoch;
    } else {
      // Genuinely concurrent readers: escalate this cell to a read vector.
      ++escalations_;
      vc_set(cell.read_vc, epoch_tid(cell.read_epoch),
             epoch_clock(cell.read_epoch));
      vc_set(cell.read_vc, t->id, clk);
      cell.read_epoch = 0;
    }
    cell.read_info = {site, cur.order_tag};
  }
}

void RaceDetector::report_race(const void* addr, const RaceAccess& prev,
                               const RaceAccess& cur) {
  const auto key = std::make_tuple(reinterpret_cast<std::uintptr_t>(addr),
                                   prev.site, cur.site, prev.is_write,
                                   cur.is_write);
  if (!seen_.insert(key).second) return;
  reports_.push_back(RaceReport{addr, prev, cur});
  std::fprintf(
      stderr,
      "DFTH RaceDetector: data race on %p (%s-%s)\n"
      "  fiber %llu %s at clock %llu, site %s, serial-order position %llu\n"
      "  fiber %llu %s at clock %llu, site %s, serial-order position %llu\n"
      "  the two segments are unordered in the fork/join DAG: no fork, join,\n"
      "  or synchronization edge connects them, so some legal schedule runs\n"
      "  them concurrently even if this run serialized them.\n",
      addr, prev.is_write ? "write" : "read", cur.is_write ? "write" : "read",
      static_cast<unsigned long long>(prev.fiber),
      prev.is_write ? "wrote" : "read",
      static_cast<unsigned long long>(prev.clock), site_or(prev.site),
      static_cast<unsigned long long>(prev.order_tag),
      static_cast<unsigned long long>(cur.fiber),
      cur.is_write ? "wrote" : "read",
      static_cast<unsigned long long>(cur.clock), site_or(cur.site),
      static_cast<unsigned long long>(cur.order_tag));
  if (abort_on_race_) std::abort();
}

// -- lifecycle / results --------------------------------------------------------

void RaceDetector::begin_run() {
  std::lock_guard<SpinLock> g(mu_);
  sync_.clear();
  barriers_.clear();
  shadow_->clear_all();
}

void RaceDetector::clear() {
  std::lock_guard<SpinLock> g(mu_);
  sync_.clear();
  barriers_.clear();
  shadow_->clear_all();
  reports_.clear();
  seen_.clear();
  escalations_ = 0;
}

void RaceDetector::set_abort_on_race(bool abort_on_race) {
  std::lock_guard<SpinLock> g(mu_);
  abort_on_race_ = abort_on_race;
}

std::uint64_t RaceDetector::races_detected() const {
  std::lock_guard<SpinLock> g(mu_);
  return reports_.size();
}

std::uint64_t RaceDetector::read_escalations() const {
  std::lock_guard<SpinLock> g(mu_);
  return escalations_;
}

std::vector<RaceReport> RaceDetector::reports() const {
  std::lock_guard<SpinLock> g(mu_);
  return reports_;
}

}  // namespace dfth::analyze
