#include "analyze/auditor.h"

#include <cstdio>
#include <cstdlib>

#include "core/asyncdf_sched.h"
#include "threads/attr.h"

namespace dfth::analyze {
namespace {

InvariantAuditor* g_active = nullptr;

const AsyncDfScheduler* as_asyncdf(const Scheduler& inner) {
  return inner.kind() == SchedKind::AsyncDf
             ? static_cast<const AsyncDfScheduler*>(&inner)
             : nullptr;
}

}  // namespace

InvariantAuditor* active_auditor() { return g_active; }

void InvariantAuditor::violation(const char* what, const Tcb* t) {
  violations_.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "DFTH InvariantAuditor: %s (thread %llu)\n", what,
               static_cast<unsigned long long>(t ? t->id : 0));
  if (abort_on_violation_.load(std::memory_order_relaxed)) std::abort();
}

void InvariantAuditor::check_registered(const Tcb* t, const char* hook) {
  if (live_.count(t) == 0) violation(hook, t);
}

void InvariantAuditor::check_asyncdf_step(const Scheduler& inner) {
  const AsyncDfScheduler* adf = as_asyncdf(inner);
  if (!adf) return;
  for (int prio = 0; prio < kNumPriorities; ++prio) {
    if (!adf->order_list(prio).check_invariants()) {
      violation("order-list tag monotonicity broken", nullptr);
      return;
    }
  }
}

void InvariantAuditor::on_register(const Scheduler& inner, Tcb* parent,
                                   Tcb* child, bool preempt) {
  steps_.fetch_add(1, std::memory_order_relaxed);
  if (!live_.insert(child).second) violation("thread registered twice", child);
  if (parent) check_registered(parent, "register_thread with unknown parent");

  // Credit δ dummy threads to the nearest non-dummy ancestor: that ancestor
  // is the thread whose oversized df_malloc forked the dummy tree.
  if (child->is_dummy) {
    Tcb* ancestor = parent;
    while (ancestor && ancestor->is_dummy) ancestor = ancestor->parent;
    if (ancestor) ++ancestor->audit_dummy_credit;
  }

  if (const AsyncDfScheduler* adf = as_asyncdf(inner)) {
    if (parent && parent->attr.priority == child->attr.priority &&
        !adf->serial_before(child, parent)) {
      violation("forked child not placed left of its parent", child);
    }
    if (!preempt && (parent == nullptr ||
                     child->attr.priority >= parent->attr.priority)) {
      violation("AsyncDF did not preempt the parent for its child", child);
    }
  }
  check_asyncdf_step(inner);
}

void InvariantAuditor::on_ready(const Scheduler& inner, Tcb* t) {
  steps_.fetch_add(1, std::memory_order_relaxed);
  check_registered(t, "on_ready for unregistered thread");
  if (t->state.load(std::memory_order_relaxed) != ThreadState::Ready) {
    violation("on_ready for a thread not in state Ready", t);
  }
  check_asyncdf_step(inner);
}

void InvariantAuditor::on_pick(const Scheduler& inner, Tcb* t,
                               std::uint64_t now) {
  steps_.fetch_add(1, std::memory_order_relaxed);
  if (t == nullptr) return;
  check_registered(t, "pick_next returned an unregistered thread");
  if (t->state.load(std::memory_order_relaxed) != ThreadState::Ready) {
    violation("pick_next returned a thread not in state Ready", t);
  }
  if (t->ready_at_ns > now) {
    violation("pick_next returned a thread not yet eligible (ready_at > now)", t);
  }

  if (const AsyncDfScheduler* adf = as_asyncdf(inner)) {
    // Recompute the paper's dispatch rule: the leftmost Ready-and-eligible
    // thread of the highest non-empty priority level must be the pick. The
    // picked thread is still linked and still Ready here (the engine flips
    // it to Running after pick_next returns), so the scan finds it.
    for (int prio = kNumPriorities - 1; prio >= 0; --prio) {
      const OrderList& list = adf->order_list(prio);
      for (const OrderNode* node = list.front();
           node != nullptr && node != list.end_sentinel(); node = node->next) {
        const auto* cand = static_cast<const Tcb*>(node->owner);
        if (cand->state.load(std::memory_order_relaxed) != ThreadState::Ready) {
          continue;
        }
        if (cand->ready_at_ns > now) continue;
        if (cand != t) {
          violation("pick_next skipped a leftmost ready thread", t);
        }
        prio = -1;  // first eligible thread found: stop both loops
        break;
      }
    }
  }
  // A fresh dispatch grants a fresh quota of K bytes (checked in on_alloc).
  t->audit_alloc_since_dispatch = 0;
  check_asyncdf_step(inner);
}

void InvariantAuditor::on_unregister(const Scheduler& inner, Tcb* t) {
  steps_.fetch_add(1, std::memory_order_relaxed);
  if (live_.erase(t) == 0) violation("unregister of unknown thread", t);
  check_asyncdf_step(inner);
}

void InvariantAuditor::on_alloc(Tcb* t, std::size_t bytes, std::size_t quota) {
  steps_.fetch_add(1, std::memory_order_relaxed);
  if (t == nullptr || quota == 0) return;
  if (bytes > quota) {
    // §4 item 2: m > K requires δ = ceil(m/K) dummy threads forked first.
    const std::uint64_t delta = (bytes + quota - 1) / quota;
    if (t->audit_dummy_credit < delta) {
      violation("allocation of more than K bytes without its δ dummy threads", t);
    } else {
      t->audit_dummy_credit -= delta;
    }
  }
  if (t->audit_alloc_since_dispatch > static_cast<std::int64_t>(quota)) {
    // The previous allocation already exhausted the quota; the engine was
    // required to preempt this thread before it allocated again.
    violation("thread allocated past its quota without being preempted", t);
  }
  t->audit_alloc_since_dispatch += static_cast<std::int64_t>(bytes);
}

void InvariantAuditor::on_inline_run(Tcb* parent, Tcb* child) {
  steps_.fetch_add(1, std::memory_order_relaxed);
  if (live_.count(child) != 0) {
    violation("inline-run of a scheduler-registered thread", child);
  }
  // Bound parents are scheduled by the OS, not by our policy, so they are
  // legitimately absent from the registered set.
  if (parent && !parent->attr.bound) {
    check_registered(parent, "inline-run under an unregistered parent");
  }
}

void InvariantAuditor::on_oom_preempt(Tcb* t) {
  steps_.fetch_add(1, std::memory_order_relaxed);
  if (t == nullptr) return;
  // The engine re-dispatches t after the preempt, which resets the window
  // via on_pick; clearing here as well keeps the invariant exact even if a
  // policy dispatches without a pick (the real engine's RunNext path).
  t->audit_alloc_since_dispatch = 0;
}

AuditedScheduler::AuditedScheduler(std::unique_ptr<Scheduler> inner)
    : inner_(std::move(inner)) {
  g_active = &auditor_;
}

AuditedScheduler::~AuditedScheduler() {
  if (g_active == &auditor_) g_active = nullptr;
}

bool AuditedScheduler::register_thread(Tcb* parent, Tcb* child) {
  const bool preempt = inner_->register_thread(parent, child);
  auditor_.on_register(*inner_, parent, child, preempt);
  return preempt;
}

void AuditedScheduler::on_ready(Tcb* t, int proc) {
  inner_->on_ready(t, proc);
  auditor_.on_ready(*inner_, t);
}

Tcb* AuditedScheduler::pick_next(int proc, std::uint64_t now,
                                 std::uint64_t* earliest) {
  Tcb* t = inner_->pick_next(proc, now, earliest);
  auditor_.on_pick(*inner_, t, now);
  return t;
}

void AuditedScheduler::unregister_thread(Tcb* t) {
  inner_->unregister_thread(t);
  auditor_.on_unregister(*inner_, t);
}

}  // namespace dfth::analyze
