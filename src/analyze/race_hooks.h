// Hook macros the runtime uses to feed the happens-before race detector
// (analyze/race_detector.h). They compile to nothing unless the build sets
// -DDFTH_RACE=ON, mirroring the DFTH_LOCK_* hooks' relationship to
// DFTH_VALIDATE, so release builds pay zero overhead.
//
// Placement contract (matters only under the RealEngine, where fibers run
// on concurrent kernel threads): release-side hooks and fast-path
// acquire-side hooks run while the sync object's guard_ spinlock is held,
// so a releaser's clock is always recorded before the next acquirer reads
// it. Blocked acquirers run their hook after Engine::block_current returns,
// which is already ordered after the releaser's hook by the wake protocol.
// Lock order: object guard_ → detector mu_; the detector never takes guards.
#pragma once

#if DFTH_RACE

#include "analyze/race_detector.h"

#define DFTH_RACE_FORK(child, parent)                                       \
  do {                                                                      \
    if ((child))                                                            \
      ::dfth::analyze::RaceDetector::instance().on_thread_start((child),    \
                                                               (parent));   \
  } while (0)
#define DFTH_RACE_JOIN(joiner, child)                                       \
  do {                                                                      \
    if ((joiner) && (child))                                                \
      ::dfth::analyze::RaceDetector::instance().on_join((joiner), (child)); \
  } while (0)
#define DFTH_RACE_ACQUIRE(t, o) \
  ::dfth::analyze::RaceDetector::instance().on_acquire((t), (o))
#define DFTH_RACE_RELEASE(t, o) \
  ::dfth::analyze::RaceDetector::instance().on_release((t), (o))
#define DFTH_RACE_RD_ACQUIRE(t, o) \
  ::dfth::analyze::RaceDetector::instance().on_rd_acquire((t), (o))
#define DFTH_RACE_RD_RELEASE(t, o) \
  ::dfth::analyze::RaceDetector::instance().on_rd_release((t), (o))
#define DFTH_RACE_WR_ACQUIRE(t, o) \
  ::dfth::analyze::RaceDetector::instance().on_wr_acquire((t), (o))
#define DFTH_RACE_BARRIER_ARRIVE(t, o, gen, last)                         \
  ::dfth::analyze::RaceDetector::instance().on_barrier_arrive((t), (o),   \
                                                              (gen), (last))
#define DFTH_RACE_BARRIER_LEAVE(t, o, gen) \
  ::dfth::analyze::RaceDetector::instance().on_barrier_leave((t), (o), (gen))
#define DFTH_RACE_BEGIN_RUN() \
  ::dfth::analyze::RaceDetector::instance().begin_run()

#else

#define DFTH_RACE_FORK(child, parent) ((void)0)
#define DFTH_RACE_JOIN(joiner, child) ((void)0)
#define DFTH_RACE_ACQUIRE(t, o) ((void)0)
#define DFTH_RACE_RELEASE(t, o) ((void)0)
#define DFTH_RACE_RD_ACQUIRE(t, o) ((void)0)
#define DFTH_RACE_RD_RELEASE(t, o) ((void)0)
#define DFTH_RACE_WR_ACQUIRE(t, o) ((void)0)
#define DFTH_RACE_BARRIER_ARRIVE(t, o, gen, last) ((void)0)
#define DFTH_RACE_BARRIER_LEAVE(t, o, gen) ((void)0)
#define DFTH_RACE_BEGIN_RUN() ((void)0)

#endif  // DFTH_RACE
