#include "analyze/lock_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "threads/tcb.h"

namespace dfth::analyze {

LockGraph& LockGraph::instance() {
  static LockGraph* graph = new LockGraph();  // leaked: hooks may outlive main
  return *graph;
}

bool LockGraph::reachable(const void* from, const void* to) const {
  std::vector<const void*> stack{from};
  std::unordered_set<const void*> visited;
  while (!stack.empty()) {
    const void* node = stack.back();
    stack.pop_back();
    if (node == to) return true;
    if (!visited.insert(node).second) continue;
    auto it = edges_.find(node);
    if (it == edges_.end()) continue;
    for (const void* succ : it->second) stack.push_back(succ);
  }
  return false;
}

void LockGraph::on_acquire(Tcb* t, const void* lock) {
  std::lock_guard<std::mutex> g(mu_);
  const void* inverted = nullptr;
  for (const void* held : t->held_locks) {
    if (held == lock) continue;  // recursive acquire is checked elsewhere
    if (!edges_[held].insert(lock).second) continue;  // edge already known
    // New order edge held → lock. If lock already reaches held, some other
    // acquisition chain ordered them the opposite way: a cycle.
    if (!inverted && reachable(lock, held)) inverted = held;
  }
  t->held_locks.push_back(lock);
  if (!inverted) return;

  ++cycles_;
  std::fprintf(stderr,
               "DFTH LockGraph: potential deadlock (lock-order inversion)\n"
               "  thread %llu acquired lock %p while holding lock %p,\n"
               "  but another acquisition chain orders %p before %p.\n"
               "  locks held by thread %llu:",
               static_cast<unsigned long long>(t->id), lock, inverted, lock,
               inverted, static_cast<unsigned long long>(t->id));
  for (const void* held : t->held_locks) std::fprintf(stderr, " %p", held);
  std::fprintf(stderr, "\n");
  if (abort_on_cycle_) std::abort();
}

void LockGraph::on_acquire_shared(Tcb* t, const void* lock) {
  // A shared hold constrains lock order exactly like an exclusive one under
  // the writer-preferring RwLock (it blocks the next writer), so the edge
  // and held-set bookkeeping are identical.
  on_acquire(t, lock);
}

void LockGraph::on_release(Tcb* t, const void* lock) {
  std::lock_guard<std::mutex> g(mu_);
  // Erase the most recent acquisition (locks are usually released LIFO, so
  // scanning from the back is one step).
  auto it = std::find(t->held_locks.rbegin(), t->held_locks.rend(), lock);
  if (it != t->held_locks.rend()) t->held_locks.erase(std::next(it).base());
}

void LockGraph::set_abort_on_cycle(bool abort_on_cycle) {
  std::lock_guard<std::mutex> g(mu_);
  abort_on_cycle_ = abort_on_cycle;
}

std::uint64_t LockGraph::cycles_detected() const {
  std::lock_guard<std::mutex> g(mu_);
  return cycles_;
}

void LockGraph::clear() {
  std::lock_guard<std::mutex> g(mu_);
  edges_.clear();
  cycles_ = 0;
}

}  // namespace dfth::analyze
