// Sanitizer fiber annotations — the glue that keeps ASan and TSan coherent
// across user-level context switches.
//
// Off-the-shelf sanitizers assume one stack per kernel thread. This runtime
// multiplexes thousands of fiber stacks over a few kernel threads, so
// without help ASan misattributes every frame after a switch (its
// fake-stack and stack-bounds state still describe the previous fiber) and
// TSan's shadow call stack walks off into another fiber's history. Both
// sanitizers export an annotation API for exactly this situation:
//
//  * ASan/common: __sanitizer_start_switch_fiber must run immediately
//    before a stack switch (passing the destination stack's bounds) and
//    __sanitizer_finish_switch_fiber immediately after control lands on the
//    new stack. Passing a null fake-stack slot on the *final* switch out of
//    a dying fiber frees its fake stack.
//  * TSan: every fiber needs a __tsan_create_fiber context; the switcher
//    calls __tsan_switch_to_fiber right before the real switch and
//    __tsan_destroy_fiber once the fiber has exited.
//
// The functions below are called from the context backends
// (threads/context_asm.cpp, threads/context_ucontext.cpp) and from the
// engines' exit/cleanup paths. Everything compiles to nothing when neither
// sanitizer is active, preserving the fast path exactly.
//
// Host-thread stacks: worker/loop contexts are created implicitly by their
// first save, so their bounds are unknown up front. We recover them from
// __sanitizer_finish_switch_fiber, which reports the bounds of the stack
// just switched away from: the switching side records itself in a
// thread-local (`tl_switch_from`), and the resumed side writes the reported
// bounds back into that context the first time.
#pragma once

#include <cstddef>

#include "threads/context.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DFTH_ASAN_ENABLED 1
#endif
#if __has_feature(thread_sanitizer)
#define DFTH_TSAN_ENABLED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) && !defined(DFTH_ASAN_ENABLED)
#define DFTH_ASAN_ENABLED 1
#endif
#if defined(__SANITIZE_THREAD__) && !defined(DFTH_TSAN_ENABLED)
#define DFTH_TSAN_ENABLED 1
#endif

#if defined(DFTH_ASAN_ENABLED)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(DFTH_TSAN_ENABLED)
#include <sanitizer/tsan_interface.h>
#endif

namespace dfth {
namespace san {

/// True when either sanitizer's fiber annotations are compiled in.
constexpr bool annotations_enabled() {
#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)
  return true;
#else
  return false;
#endif
}

#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)

/// The context that most recently initiated a switch on this kernel thread;
/// the resumed side uses it to back-fill host-stack bounds (header comment).
inline thread_local Context* tl_switch_from = nullptr;

/// Records stack bounds and creates the TSan fiber for a freshly made
/// context. Called from context_make.
inline void fiber_made(Context* ctx, void* stack_lo, void* stack_hi) {
  ctx->san.stack_bottom = stack_lo;
  ctx->san.stack_bytes = static_cast<std::size_t>(static_cast<char*>(stack_hi) -
                                                  static_cast<char*>(stack_lo));
#if defined(DFTH_TSAN_ENABLED)
  if (ctx->san.tsan_fiber == nullptr) {
    ctx->san.tsan_fiber = __tsan_create_fiber(0);
    ctx->san.tsan_fiber_owned = true;
  }
#endif
}

/// Runs immediately before the raw switch; `save` will resume later.
inline void pre_switch(Context* save, const Context* restore) {
#if defined(DFTH_ASAN_ENABLED)
  __sanitizer_start_switch_fiber(&save->san.asan_fake_stack,
                                 restore->san.stack_bottom,
                                 restore->san.stack_bytes);
#endif
#if defined(DFTH_TSAN_ENABLED)
  if (save->san.tsan_fiber == nullptr) {
    // A host-thread context being saved for the first time: its TSan
    // "fiber" is the kernel thread's own context, which we must not own.
    save->san.tsan_fiber = __tsan_get_current_fiber();
  }
  __tsan_switch_to_fiber(restore->san.tsan_fiber, 0);
#endif
  tl_switch_from = save;
}

/// Runs immediately before the raw switch out of a fiber that never
/// resumes: frees the dying fiber's ASan fake stack.
inline void pre_final_switch(const Context* restore) {
#if defined(DFTH_ASAN_ENABLED)
  __sanitizer_start_switch_fiber(nullptr, restore->san.stack_bottom,
                                 restore->san.stack_bytes);
#endif
#if defined(DFTH_TSAN_ENABLED)
  __tsan_switch_to_fiber(restore->san.tsan_fiber, 0);
#endif
  tl_switch_from = nullptr;
}

/// Runs as the first action after a raw switch returned into `self`.
inline void post_switch(Context* self) {
#if defined(DFTH_ASAN_ENABLED)
  const void* from_bottom = nullptr;
  std::size_t from_bytes = 0;
  __sanitizer_finish_switch_fiber(self->san.asan_fake_stack, &from_bottom,
                                  &from_bytes);
  self->san.asan_fake_stack = nullptr;
  if (Context* from = tl_switch_from) {
    if (from->san.stack_bottom == nullptr) {
      from->san.stack_bottom = from_bottom;
      from->san.stack_bytes = from_bytes;
    }
  }
#else
  (void)self;
#endif
  tl_switch_from = nullptr;
}

/// Runs as the first action of a brand-new fiber (via the entry shim).
inline void fiber_started(Context* /*self*/) {
#if defined(DFTH_ASAN_ENABLED)
  const void* from_bottom = nullptr;
  std::size_t from_bytes = 0;
  __sanitizer_finish_switch_fiber(nullptr, &from_bottom, &from_bytes);
  if (Context* from = tl_switch_from) {
    if (from->san.stack_bottom == nullptr) {
      from->san.stack_bottom = from_bottom;
      from->san.stack_bytes = from_bytes;
    }
  }
#endif
  tl_switch_from = nullptr;
}

/// Entry shim installed by context_make in sanitizer builds so that every
/// fiber's first action is fiber_started, with no engine cooperation needed.
inline void entry_shim(void* arg) {
  Context* ctx = static_cast<Context*>(arg);
  fiber_started(ctx);
  ctx->san.entry(ctx->san.entry_arg);
}

/// Tears down sanitizer state of an exited fiber (TSan fiber context).
/// Idempotent; never touches host-thread contexts (tsan_fiber_owned guards).
inline void fiber_released(Context* ctx) {
#if defined(DFTH_TSAN_ENABLED)
  if (ctx->san.tsan_fiber != nullptr && ctx->san.tsan_fiber_owned) {
    __tsan_destroy_fiber(ctx->san.tsan_fiber);
    ctx->san.tsan_fiber = nullptr;
    ctx->san.tsan_fiber_owned = false;
  }
#else
  (void)ctx;
#endif
}

#endif  // DFTH_ASAN_ENABLED || DFTH_TSAN_ENABLED

/// Marks a released fiber stack unaddressable so a stray pointer into a
/// cached (but not live) stack is an ASan report, not silent reuse.
inline void poison_stack(void* lo, std::size_t bytes) {
#if defined(DFTH_ASAN_ENABLED)
  __asan_poison_memory_region(lo, bytes);
#else
  (void)lo;
  (void)bytes;
#endif
}

/// Re-arms a stack region for use (pool reuse, or unmapping on trim).
inline void unpoison_stack(void* lo, std::size_t bytes) {
#if defined(DFTH_ASAN_ENABLED)
  __asan_unpoison_memory_region(lo, bytes);
#else
  (void)lo;
  (void)bytes;
#endif
}

}  // namespace san
}  // namespace dfth
