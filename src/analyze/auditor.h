// Scheduler-invariant validator. In -DDFTH_VALIDATE=ON builds,
// make_scheduler wraps every policy in an AuditedScheduler decorator whose
// InvariantAuditor re-checks, on every hook call, the contract documented in
// core/scheduler.h plus the AsyncDF-specific properties from the paper
// (§4 item 2):
//
//  generic (any policy):
//   * register_thread is called exactly once per thread, with a registered
//     (or null) parent, before the child appears in any other hook;
//   * on_ready is only called for registered threads in state Ready;
//   * pick_next only returns a registered Ready thread with
//     ready_at_ns <= now.
//
//  AsyncDF:
//   * a forked child lands to the immediate left of its parent in the
//     serial-order list (checked via serial_before);
//   * the parent is preempted so the child runs first (the returned flag);
//   * the order list's tag-monotonicity invariant holds after every step;
//   * pick_next returns the leftmost ready thread of the highest non-empty
//     priority level;
//   * between two dispatches a thread df_malloc's at most K bytes (the
//     engine must quota-preempt it before it allocates past K);
//   * an allocation of m > K bytes is preceded by δ = ceil(m/K) dummy
//     threads (df_malloc's binary dummy tree, credited at registration).
//
// The scheduler-side hooks run under the engine's scheduler lock; the
// allocation hook runs in fiber context and touches only the allocating
// thread's own Tcb fields plus atomic counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_set>

#include "core/scheduler.h"

namespace dfth::analyze {

class InvariantAuditor {
 public:
  /// When true (default), any violation aborts DFTH_CHECK-style; tests turn
  /// it off and assert on violations() instead.
  void set_abort_on_violation(bool abort_on_violation) {
    abort_on_violation_.store(abort_on_violation, std::memory_order_relaxed);
  }

  std::uint64_t violations() const {
    return violations_.load(std::memory_order_relaxed);
  }
  /// Hook invocations audited so far (tests use this to prove the auditor
  /// actually observed a run).
  std::uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }

  // -- hooks (called by AuditedScheduler / df_malloc) ------------------------
  void on_register(const Scheduler& inner, Tcb* parent, Tcb* child, bool preempt);
  void on_ready(const Scheduler& inner, Tcb* t);
  void on_pick(const Scheduler& inner, Tcb* t, std::uint64_t now);
  void on_unregister(const Scheduler& inner, Tcb* t);
  /// Fiber-context hook from df_malloc; quota == 0 disables quota checks.
  void on_alloc(Tcb* t, std::size_t bytes, std::size_t quota);

  // -- resilience transitions (src/resil/) -----------------------------------
  // Engine degradation paths that are legal by construction but have
  // auditable preconditions.

  /// A child whose stack/context acquisition failed is being run inline on
  /// `parent`'s stack. Legal because inline execution *is* the serial
  /// depth-first order — but only if the child was never registered with
  /// the scheduler (a registered child would additionally occupy an
  /// order-list slot the scheduler believes it can dispatch). Called with
  /// the engine's scheduler lock held.
  void on_inline_run(Tcb* parent, Tcb* child);

  /// Heap exhaustion preempted `t` AsyncDF-style. The re-dispatch grants a
  /// fresh allocation window, exactly as a quota preemption does. Fiber
  /// context; touches only t's own audit fields.
  void on_oom_preempt(Tcb* t);

 private:
  void check_registered(const Tcb* t, const char* hook);
  void check_asyncdf_step(const Scheduler& inner);
  void violation(const char* what, const Tcb* t);

  std::unordered_set<const Tcb*> live_;  // guarded by the engine scheduler lock
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> violations_{0};
  std::atomic<bool> abort_on_violation_{true};
};

/// Decorator installed by make_scheduler under DFTH_VALIDATE. Forwards every
/// Scheduler call to the wrapped policy and audits the result. underlying()
/// exposes the wrapped policy so engines can still dynamic_cast for
/// policy-specific stats.
class AuditedScheduler final : public Scheduler {
 public:
  explicit AuditedScheduler(std::unique_ptr<Scheduler> inner);
  ~AuditedScheduler() override;

  SchedKind kind() const override { return inner_->kind(); }
  bool needs_quota() const override { return inner_->needs_quota(); }
  Scheduler* underlying() override { return inner_->underlying(); }

  bool register_thread(Tcb* parent, Tcb* child) override;
  void on_ready(Tcb* t, int proc) override;
  Tcb* pick_next(int proc, std::uint64_t now, std::uint64_t* earliest) override;
  void unregister_thread(Tcb* t) override;
  std::size_t ready_count() const override { return inner_->ready_count(); }
  int lock_domain(int proc) const override { return inner_->lock_domain(proc); }

  InvariantAuditor& auditor() { return auditor_; }

 private:
  std::unique_ptr<Scheduler> inner_;
  InvariantAuditor auditor_;
};

/// The auditor of the most recently constructed AuditedScheduler (the
/// engine's, for the duration of a run), or nullptr. df_malloc routes its
/// allocation hook through this.
InvariantAuditor* active_auditor();

}  // namespace dfth::analyze
