// Happens-before data-race detection over the logical fork/join DAG — the
// FastTrack algorithm (epochs + vector clocks) applied to *fibers* instead
// of kernel threads.
//
// Why TSan cannot do this job: the paper's programs express parallelism as
// thousands of short-lived logical threads, but under the deterministic
// SimEngine every fiber runs on one host thread, so accesses that are
// *virtually* concurrent (no path between them in the fork/join DAG) are
// completely serialized at the hardware level — TSan sees one well-ordered
// instruction stream and stays silent. This is the same blind spot the
// LockGraph header documents for deadlocks, and the fix is the same: reason
// about the program's own synchronization structure, not the host's. Each
// fiber carries a vector clock (Tcb::race_vc) advanced by the runtime's own
// edges — fork (parent→child), join (exit→joiner), and every primitive in
// runtime/sync.cpp (Mutex/RwLock release→acquire, CondVar signal→wakeup,
// Semaphore V→P, Barrier generation as an all-to-all edge, Once) — so two
// annotated accesses race exactly when neither happens-before the other in
// the DAG, *on any schedule*, from a single deterministic run. That is what
// makes the analysis schedule-insensitive: FIFO, LIFO, AsyncDF and
// work stealing all report the same race set for the same program.
//
// The epoch optimization (FastTrack, PLDI'09): a full vector-clock per
// shadow cell would cost O(live fibers) per access — untenable when the
// paper's point is programs with 10^5 threads. Most accesses are totally
// ordered, so each cell stores the last write as a single (fiber, clock)
// *epoch* and the read history as one epoch too, escalating to a read
// vector only while reads are genuinely concurrent (and collapsing back on
// the next ordered write). Accesses are explicit annotations — df_read /
// df_write in runtime/api.h, in the same family as annotate_touch — over
// df_malloc'd memory, shadowed per 8-byte granule (space/tracked_heap.h).
//
// Reports speak the paper's vocabulary: both access sites, the fiber ids,
// and the serial-order (order-list) positions of the racing segments, so
// "these two segments are unordered in the depth-first serial order" reads
// directly off the report. Hooks compile in under -DDFTH_RACE=ON
// (composable with -DDFTH_VALIDATE); the class itself is always built and
// instantiable so unit tests can drive it directly, mirroring LockGraph.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "space/tracked_heap.h"
#include "util/spinlock.h"

namespace dfth {

struct Tcb;

namespace analyze {

/// True when the build carries the race-detector hooks (-DDFTH_RACE=ON).
constexpr bool race_enabled() {
#if DFTH_RACE
  return true;
#else
  return false;
#endif
}

/// One side of a reported race.
struct RaceAccess {
  std::uint64_t fiber = 0;      ///< logical thread id
  std::uint64_t clock = 0;      ///< that fiber's clock at the access
  bool is_write = false;
  const char* site = nullptr;   ///< df_read/df_write annotation label
  std::uint64_t order_tag = 0;  ///< serial-order (order-list) position, 0 if
                                ///< the scheduler keeps no order list
};

struct RaceReport {
  const void* addr = nullptr;  ///< first racing granule (8-byte aligned)
  RaceAccess prev;             ///< the access remembered in the shadow cell
  RaceAccess cur;              ///< the access that exposed the race
};

class RaceDetector {
 public:
  /// Standalone instance with a private shadow table (unit tests).
  RaceDetector();
  /// Instance sharing an external shadow table; the process-wide singleton
  /// binds to TrackedHeap's so df_free retires shadow automatically.
  explicit RaceDetector(ShadowTable* shadow);
  ~RaceDetector();
  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  /// Process-wide instance the runtime hooks report to.
  static RaceDetector& instance();

  // -- fork/join DAG edges ----------------------------------------------------
  /// Fork edge parent→child (parent == nullptr for the main thread): the
  /// child inherits everything the parent has seen; the parent's clock ticks
  /// so its post-fork segment is concurrent with the child.
  void on_thread_start(Tcb* t, Tcb* parent);
  /// Join edge exit→joiner: the joiner inherits everything the exited child
  /// (and transitively its whole subtree) has seen.
  void on_join(Tcb* joiner, Tcb* child);

  // -- synchronization edges (object keyed by address) ------------------------
  /// Release→acquire: Mutex unlock→lock, Semaphore V→P, CondVar
  /// signal→wakeup, Once run→observe, RwLock write release.
  void on_acquire(Tcb* t, const void* obj);
  void on_release(Tcb* t, const void* obj);
  /// RwLock read side: readers order after the last writer but not after
  /// each other; a later writer orders after all of them.
  void on_rd_acquire(Tcb* t, const void* obj);
  void on_rd_release(Tcb* t, const void* obj);
  void on_wr_acquire(Tcb* t, const void* obj);
  /// Barrier: generation `gen` is an all-to-all edge — every arrival joins
  /// the generation's clock (`last` set by the completing arrival), every
  /// departure inherits it.
  void on_barrier_arrive(Tcb* t, const void* barrier, std::uint64_t gen, bool last);
  void on_barrier_leave(Tcb* t, const void* barrier, std::uint64_t gen);

  // -- annotated memory accesses ----------------------------------------------
  void on_read(Tcb* t, const void* p, std::size_t bytes, const char* site);
  void on_write(Tcb* t, const void* p, std::size_t bytes, const char* site);

  // -- lifecycle / results -----------------------------------------------------
  /// Called at dfth::run() entry: drops all happens-before state (sync
  /// clocks, barrier generations, shadow cells) because fiber ids restart
  /// per run — but keeps accumulated reports so a suite-wide sweep can
  /// collect evidence across runs.
  void begin_run();
  /// Drops everything, reports included (tests).
  void clear();

  void set_abort_on_race(bool abort_on_race);
  std::uint64_t races_detected() const;
  /// Times a cell's read history escalated from an epoch to a read vector
  /// (observability for the epoch optimization; tests assert the fast path
  /// stays an epoch under totally ordered reads).
  std::uint64_t read_escalations() const;
  std::vector<RaceReport> reports() const;

 private:
  using VClock = std::vector<std::uint64_t>;
  struct SyncClock {
    VClock rel;     ///< joined at exclusive release; acquires inherit it
    VClock rd_rel;  ///< joined at read release; only write acquires inherit
  };
  struct BarrierClock {
    VClock accum;        ///< arrivals of the in-progress generation
    VClock released[2];  ///< completed generations, by parity (≤2 in flight)
  };

  void access(Tcb* t, const void* p, std::size_t bytes, const char* site,
              bool is_write);
  /// Records + prints a race; returns after aborting unless configured not
  /// to. Caller holds mu_ and the shadow table's mutex.
  void report_race(const void* addr, const RaceAccess& prev, const RaceAccess& cur);

  mutable SpinLock mu_;
  ShadowTable* shadow_ = nullptr;
  std::unique_ptr<ShadowTable> owned_shadow_;  ///< set for the test ctor
  std::unordered_map<const void*, SyncClock> sync_;
  std::unordered_map<const void*, BarrierClock> barriers_;
  std::vector<RaceReport> reports_;
  /// Dedup key: (granule, prev site, cur site, prev-is-write, cur-is-write).
  std::set<std::tuple<std::uintptr_t, const char*, const char*, bool, bool>> seen_;
  std::uint64_t escalations_ = 0;
  bool abort_on_race_ = true;
};

}  // namespace analyze
}  // namespace dfth
