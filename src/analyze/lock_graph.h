// Lockset-based deadlock detection (the classic lock-order-graph algorithm):
// every thread tracks the set of locks it holds — exclusive Mutex/RwLock
// write acquisitions and RwLock read acquisitions alike (Tcb::held_locks);
// acquiring L while holding H records the order edge H → L in a global
// graph. A cycle in that graph means two code paths take the same locks in
// opposite orders — a *potential* deadlock, reported even when the
// interleaving that would actually deadlock never happened in this run.
// That is the point: the AsyncDF scheduler serializes most interleavings
// (especially under the deterministic sim engine), so a wait-for-graph
// checker would almost never trip; the order graph catches the hazard on
// any schedule that merely exercises both paths.
//
// The graph is cumulative across the run (edges are never removed on
// release) and keyed by lock address. Hooks are compiled into
// runtime/sync.cpp only under -DDFTH_VALIDATE=ON; the class itself is
// always built so unit tests can drive it directly.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace dfth {

struct Tcb;

namespace analyze {

/// True when the build carries the validation hooks (-DDFTH_VALIDATE=ON).
constexpr bool validate_enabled() {
#if DFTH_VALIDATE
  return true;
#else
  return false;
#endif
}

class LockGraph {
 public:
  LockGraph() = default;  // instantiable for unit tests
  LockGraph(const LockGraph&) = delete;
  LockGraph& operator=(const LockGraph&) = delete;

  /// Process-wide instance the sync-primitive hooks report to.
  static LockGraph& instance();

  /// Records that `t` acquired exclusive lock `lock`: appends it to
  /// t->held_locks and adds order edges from every lock already held. A new
  /// edge that closes a cycle fires a report (thread id, lock addresses,
  /// held set) and, when abort_on_cycle (the default), aborts the process
  /// DFTH_CHECK-style.
  void on_acquire(Tcb* t, const void* lock);

  /// Records that `t` acquired `lock` in shared (read) mode. Shared
  /// acquisitions participate in the order graph exactly like exclusive
  /// ones: under a writer-preferring RwLock a held read lock blocks the
  /// next writer, so reader/writer ABBA inversions deadlock just the same
  /// — two threads each holding a read lock and requesting the other's
  /// write side can never proceed.
  void on_acquire_shared(Tcb* t, const void* lock);

  /// Records that `t` released `lock` (either mode). Order edges persist —
  /// the algorithm is about acquisition history, not current ownership.
  void on_release(Tcb* t, const void* lock);

  void set_abort_on_cycle(bool abort_on_cycle);
  std::uint64_t cycles_detected() const;

  /// Drops all edges and counters (tests; locks held by live threads stay
  /// in their Tcbs).
  void clear();

 private:
  /// True when `to` is reachable from `from` along order edges. mu_ held.
  bool reachable(const void* from, const void* to) const;

  mutable std::mutex mu_;
  std::unordered_map<const void*, std::unordered_set<const void*>> edges_;
  std::uint64_t cycles_ = 0;
  bool abort_on_cycle_ = true;
};

}  // namespace analyze
}  // namespace dfth
