// Lightweight runtime assertions that stay on in release builds.
//
// DFTH_CHECK aborts with a message when the condition fails; it is used for
// invariants whose violation would corrupt scheduler state (we never want to
// limp past those, even in optimized builds). DFTH_DCHECK compiles away in
// NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dfth {

[[noreturn]] inline void check_fail(const char* cond, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "DFTH_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace dfth

#define DFTH_CHECK(cond)                                         \
  do {                                                           \
    if (!(cond)) ::dfth::check_fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define DFTH_CHECK_MSG(cond, msg)                                  \
  do {                                                             \
    if (!(cond)) ::dfth::check_fail(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define DFTH_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define DFTH_DCHECK(cond) DFTH_CHECK(cond)
#endif
