// Wall-clock timing helpers for the real engine and microbenchmarks.
#pragma once

#include <chrono>
#include <cstdint>

namespace dfth {

class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic nanosecond stamp (for coarse event ordering in logs/stats).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace dfth
