#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace dfth {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "[dfth %s] ", level_name(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace dfth
