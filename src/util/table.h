// Column-aligned text tables + CSV emission.
//
// Every bench prints its paper table/figure as one of these, and optionally
// writes the same rows to a CSV file for plotting.
#pragma once

#include <string>
#include <vector>

namespace dfth {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience formatters for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  static std::string fmt_bytes(long long bytes);  // "12.3 MB"

  /// Renders with aligned columns; `title` (if nonempty) becomes a caption.
  std::string to_string(const std::string& title = "") const;

  /// Writes headers+rows as CSV to `path`; returns false on I/O error.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dfth
