// Test-and-test-and-set spinlock used to guard short critical sections in
// synchronization primitives. In the simulation engine (single OS thread)
// it is never contended; in the real engine critical sections are a handful
// of pointer writes, so spinning beats a futex round trip.
#pragma once

#include <atomic>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace dfth {

class SpinLock {
 public:
  void lock() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }

  bool try_lock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void unlock() { locked_.store(false, std::memory_order_release); }

  /// Diagnostics only: true while some thread holds the lock. Engines assert
  /// this on block_current's guard (sync protocol step 3, runtime/sync.h).
  bool is_locked() const { return locked_.load(std::memory_order_relaxed); }

 private:
  static void cpu_relax() {
#if defined(__x86_64__)
    _mm_pause();
#endif
  }

  std::atomic<bool> locked_{false};
};

}  // namespace dfth
