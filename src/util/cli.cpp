#include "util/cli.h"

#include <cstdio>
#include <cstdlib>

namespace dfth {

Cli::Cli(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

bool* Cli::flag(const std::string& name, bool def, const std::string& help) {
  bools_.push_back(std::make_unique<bool>(def));
  opts_.push_back({name, help, Kind::Bool, bools_.size() - 1, def ? "true" : "false"});
  return bools_.back().get();
}

std::int64_t* Cli::int_opt(const std::string& name, std::int64_t def,
                           const std::string& help) {
  ints_.push_back(std::make_unique<std::int64_t>(def));
  opts_.push_back({name, help, Kind::Int, ints_.size() - 1, std::to_string(def)});
  return ints_.back().get();
}

double* Cli::double_opt(const std::string& name, double def, const std::string& help) {
  doubles_.push_back(std::make_unique<double>(def));
  opts_.push_back({name, help, Kind::Double, doubles_.size() - 1, std::to_string(def)});
  return doubles_.back().get();
}

std::string* Cli::str_opt(const std::string& name, std::string def,
                          const std::string& help) {
  strings_.push_back(std::make_unique<std::string>(def));
  opts_.push_back({name, help, Kind::Str, strings_.size() - 1, def});
  return strings_.back().get();
}

Cli::Opt* Cli::find(const std::string& name) {
  for (auto& opt : opts_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

void Cli::fail(const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", program_.c_str(), message.c_str());
  print_help();
  std::exit(2);
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) fail("unexpected positional argument '" + arg + "'");
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Opt* opt = find(arg);
    if (!opt) fail("unknown option '--" + arg + "'");
    if (opt->kind == Kind::Bool && !has_value) {
      *bools_[opt->index] = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) fail("option '--" + arg + "' expects a value");
      value = argv[++i];
    }
    char* end = nullptr;
    switch (opt->kind) {
      case Kind::Bool:
        *bools_[opt->index] = (value == "1" || value == "true" || value == "yes");
        break;
      case Kind::Int:
        *ints_[opt->index] = std::strtoll(value.c_str(), &end, 0);
        if (end == value.c_str() || *end) fail("bad integer for '--" + arg + "': " + value);
        break;
      case Kind::Double:
        *doubles_[opt->index] = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end) fail("bad number for '--" + arg + "': " + value);
        break;
      case Kind::Str:
        *strings_[opt->index] = value;
        break;
    }
  }
  return true;
}

void Cli::print_help() const {
  std::printf("%s — %s\n\nOptions:\n", program_.c_str(), summary_.c_str());
  for (const auto& opt : opts_) {
    std::printf("  --%-22s %s (default: %s)\n", opt.name.c_str(), opt.help.c_str(),
                opt.default_repr.c_str());
  }
}

}  // namespace dfth
