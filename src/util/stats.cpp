#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace dfth {

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  DFTH_CHECK(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>((x - lo_) / width_)];
  }
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

double Histogram::percentile(double p) const {
  DFTH_CHECK(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total_));
  std::uint64_t seen = underflow_;
  if (seen >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return bucket_lo(i) + width_;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    std::snprintf(line, sizeof line, "%12.3g |", bucket_lo(i));
    out += line;
    out.append(bar, '#');
    std::snprintf(line, sizeof line, " %llu\n", static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace dfth
