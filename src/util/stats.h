// Small statistics helpers: running summaries and fixed-bucket histograms.
// Used by engines for per-category accounting and by benches for reporting.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dfth {

/// Streaming min/max/mean/stddev accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;

  void merge(const RunningStat& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram over [lo, hi) with uniform buckets plus under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t total() const { return total_; }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::size_t buckets() const { return counts_.size(); }
  double bucket_lo(std::size_t i) const;
  double percentile(double p) const;
  std::string to_string(std::size_t max_width = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// High-water-mark counter: tracks a current level and its historical peak.
class HighWater {
 public:
  void add(std::int64_t delta) {
    current_ += delta;
    if (current_ > peak_) peak_ = current_;
  }
  void reset() { current_ = 0; peak_ = 0; }
  std::int64_t current() const { return current_; }
  std::int64_t peak() const { return peak_; }

 private:
  std::int64_t current_ = 0;
  std::int64_t peak_ = 0;
};

}  // namespace dfth
