#include "util/table.h"

#include <cstdio>

#include "util/check.h"

namespace dfth {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DFTH_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DFTH_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::fmt_bytes(long long bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1LL << 30)) {
    std::snprintf(buf, sizeof buf, "%.2f GB", b / static_cast<double>(1LL << 30));
  } else if (bytes >= (1LL << 20)) {
    std::snprintf(buf, sizeof buf, "%.1f MB", b / static_cast<double>(1LL << 20));
  } else if (bytes >= (1LL << 10)) {
    std::snprintf(buf, sizeof buf, "%.1f KB", b / static_cast<double>(1LL << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%lld B", bytes);
  }
  return buf;
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::string out;
  if (!title.empty()) {
    out += "== " + title + " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      if (c + 1 < cells.size()) out.append(widths[c] - cells[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

bool Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fputs(cells[c].c_str(), f);
      std::fputc(c + 1 < cells.size() ? ',' : '\n', f);
    }
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  std::fclose(f);
  return true;
}

}  // namespace dfth
