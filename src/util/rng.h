// Deterministic pseudo-random number generation.
//
// All randomized inputs in this repository (particle distributions, synthetic
// meshes, datasets, property-test programs) flow through Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256** seeded via splitmix64, both public-domain algorithms by
// Blackman & Vigna; they are fast, have 256 bits of state, and pass BigCrush.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace dfth {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64-bit value (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift rejection-free-ish
  /// reduction (bias is negligible for our bounds << 2^64).
  std::uint64_t next_below(std::uint64_t bound) {
    DFTH_CHECK(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    DFTH_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Box–Muller (caches the second deviate).
  double next_gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

  /// Deterministic sub-stream: an independent generator derived from this
  /// one's seed and a stream index (used to give parallel tasks private RNGs).
  Rng fork_stream(std::uint64_t stream) const {
    std::uint64_t sm = state_[0] ^ (0xd1342543de82ef95ULL * (stream + 1));
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    child.have_cached_ = false;
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace dfth
