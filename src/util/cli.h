// Tiny command-line parser shared by the benches and examples.
//
// Supported forms: --name value, --name=value, and bare boolean --name.
// Unknown flags are an error (so typos in experiment sweeps fail loudly).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dfth {

class Cli {
 public:
  /// `summary` is printed at the top of --help output.
  Cli(std::string program, std::string summary);

  // Registration. Each returns a stable pointer the caller reads after parse().
  bool* flag(const std::string& name, bool def, const std::string& help);
  std::int64_t* int_opt(const std::string& name, std::int64_t def, const std::string& help);
  double* double_opt(const std::string& name, double def, const std::string& help);
  std::string* str_opt(const std::string& name, std::string def, const std::string& help);

  /// Parses argv. On --help prints usage and returns false (caller exits 0).
  /// On a malformed/unknown flag prints an error + usage and calls exit(2).
  bool parse(int argc, char** argv);

  void print_help() const;

 private:
  enum class Kind { Bool, Int, Double, Str };
  struct Opt {
    std::string name;
    std::string help;
    Kind kind;
    std::size_t index;  // into the typed storage vector
    std::string default_repr;
  };

  Opt* find(const std::string& name);
  [[noreturn]] void fail(const std::string& message);

  std::string program_;
  std::string summary_;
  std::vector<Opt> opts_;
  // Deques of stable storage (vectors of unique_ptr-like deque semantics).
  std::vector<std::unique_ptr<bool>> bools_;
  std::vector<std::unique_ptr<std::int64_t>> ints_;
  std::vector<std::unique_ptr<double>> doubles_;
  std::vector<std::unique_ptr<std::string>> strings_;
};

}  // namespace dfth
