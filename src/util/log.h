// Minimal leveled logger. Off (Warn) by default so library users see nothing
// unless they opt in; benches raise the level with --verbose.
#pragma once

#include <cstdarg>

namespace dfth {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is actually printed.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; cheap early-out below the active level.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace dfth

#define DFTH_LOG_DEBUG(...) ::dfth::logf(::dfth::LogLevel::Debug, __VA_ARGS__)
#define DFTH_LOG_INFO(...) ::dfth::logf(::dfth::LogLevel::Info, __VA_ARGS__)
#define DFTH_LOG_WARN(...) ::dfth::logf(::dfth::LogLevel::Warn, __VA_ARGS__)
#define DFTH_LOG_ERROR(...) ::dfth::logf(::dfth::LogLevel::Error, __VA_ARGS__)
