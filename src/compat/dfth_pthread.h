// Source-level Pthreads compatibility layer.
//
// The paper's selling point is that its scheduler slots under the
// *standard* Pthreads API: "any existing Pthreads programs can be executed
// using our space-efficient scheduler." This header delivers that for this
// library: a program written against the pthread_* call shapes can switch
// to DFThreads by replacing `#include <pthread.h>` with this header and
// prefixing the calls with dfth_ (or `#define DFTH_PTHREAD_ALIASES 1` first
// to get the unprefixed names via macros). It is source-compatible, not
// ABI-compatible — everything must run inside dfth::run().
//
// Covered: threads (create/join/detach/self/equal/yield), mutexes, condition
// variables, rwlocks, semaphores, barriers, once, and thread-specific data.
// Attributes support the subset the paper exercises: stack size, detach
// state, and bound ("system scope") threads.
#pragma once

#include <cstdint>
#include <new>
#include <source_location>

#include "runtime/api.h"
#include "runtime/sync.h"

// -- types --------------------------------------------------------------------

struct dfth_pthread_t {
  dfth::Thread handle;
};
struct dfth_pthread_attr_t {
  dfth::Attr attr;
};
using dfth_pthread_mutex_t = dfth::Mutex;
using dfth_pthread_cond_t = dfth::CondVar;
using dfth_pthread_rwlock_t = dfth::RwLock;
using dfth_sem_t = dfth::Semaphore;
using dfth_pthread_barrier_t = dfth::Barrier*;  // init carries the count
using dfth_pthread_once_t = dfth::Once;
using dfth_pthread_key_t = std::uint32_t;

inline constexpr int DFTH_PTHREAD_SCOPE_PROCESS = 0;  // unbound (library)
inline constexpr int DFTH_PTHREAD_SCOPE_SYSTEM = 1;   // bound ("LWP")
inline constexpr int DFTH_PTHREAD_CREATE_JOINABLE = 0;
inline constexpr int DFTH_PTHREAD_CREATE_DETACHED = 1;

// -- attributes ------------------------------------------------------------------

inline int dfth_pthread_attr_init(dfth_pthread_attr_t* a) {
  a->attr = dfth::Attr{};
  return 0;
}
inline int dfth_pthread_attr_destroy(dfth_pthread_attr_t*) { return 0; }
inline int dfth_pthread_attr_setstacksize(dfth_pthread_attr_t* a, std::size_t s) {
  a->attr.stack_size = s;
  return 0;
}
inline int dfth_pthread_attr_setdetachstate(dfth_pthread_attr_t* a, int state) {
  a->attr.detached = (state == DFTH_PTHREAD_CREATE_DETACHED);
  return 0;
}
inline int dfth_pthread_attr_setscope(dfth_pthread_attr_t* a, int scope) {
  a->attr.bound = (scope == DFTH_PTHREAD_SCOPE_SYSTEM);
  return 0;
}
inline int dfth_pthread_attr_setschedparam_priority(dfth_pthread_attr_t* a,
                                                    int priority) {
  a->attr.priority = priority;
  return 0;
}

// -- threads -----------------------------------------------------------------------

// The defaulted source_location forwards the *application's* call site into
// dfth::spawn, so the work/span profiler attributes threads to the app's
// pthread_create line rather than to this shim.
inline int dfth_pthread_create(
    dfth_pthread_t* t, const dfth_pthread_attr_t* a, void* (*fn)(void*),
    void* arg,
    std::source_location site = std::source_location::current()) {
  const dfth::Attr attr = a ? a->attr : dfth::Attr{};
  t->handle = dfth::spawn([fn, arg]() -> void* { return fn(arg); }, attr, site);
  return 0;
}
inline int dfth_pthread_join(dfth_pthread_t t, void** result) {
  void* r = dfth::join(t.handle);
  if (result) *result = r;
  return 0;
}
inline int dfth_pthread_detach(dfth_pthread_t t) {
  dfth::detach(t.handle);
  return 0;
}
inline std::uint64_t dfth_pthread_self() { return dfth::self_id(); }
inline int dfth_pthread_equal(std::uint64_t a, std::uint64_t b) { return a == b; }
inline int dfth_sched_yield() {
  dfth::yield();
  return 0;
}

// -- mutexes ----------------------------------------------------------------------

inline int dfth_pthread_mutex_init(dfth_pthread_mutex_t*, const void* = nullptr) {
  return 0;  // Mutex is valid on construction
}
inline int dfth_pthread_mutex_destroy(dfth_pthread_mutex_t*) { return 0; }
inline int dfth_pthread_mutex_lock(dfth_pthread_mutex_t* m) {
  m->lock();
  return 0;
}
inline int dfth_pthread_mutex_trylock(dfth_pthread_mutex_t* m) {
  return m->try_lock() ? 0 : 16 /*EBUSY*/;
}
inline int dfth_pthread_mutex_unlock(dfth_pthread_mutex_t* m) {
  m->unlock();
  return 0;
}

// -- condition variables --------------------------------------------------------------

inline int dfth_pthread_cond_init(dfth_pthread_cond_t*, const void* = nullptr) {
  return 0;
}
inline int dfth_pthread_cond_destroy(dfth_pthread_cond_t*) { return 0; }
inline int dfth_pthread_cond_wait(dfth_pthread_cond_t* c, dfth_pthread_mutex_t* m) {
  c->wait(*m);
  return 0;
}
inline int dfth_pthread_cond_signal(dfth_pthread_cond_t* c) {
  c->signal();
  return 0;
}
inline int dfth_pthread_cond_broadcast(dfth_pthread_cond_t* c) {
  c->broadcast();
  return 0;
}

// -- rwlocks ----------------------------------------------------------------------

inline int dfth_pthread_rwlock_init(dfth_pthread_rwlock_t*, const void* = nullptr) {
  return 0;
}
inline int dfth_pthread_rwlock_destroy(dfth_pthread_rwlock_t*) { return 0; }
inline int dfth_pthread_rwlock_rdlock(dfth_pthread_rwlock_t* l) {
  l->rdlock();
  return 0;
}
inline int dfth_pthread_rwlock_tryrdlock(dfth_pthread_rwlock_t* l) {
  return l->try_rdlock() ? 0 : 16;
}
inline int dfth_pthread_rwlock_wrlock(dfth_pthread_rwlock_t* l) {
  l->wrlock();
  return 0;
}
inline int dfth_pthread_rwlock_trywrlock(dfth_pthread_rwlock_t* l) {
  return l->try_wrlock() ? 0 : 16;
}
inline int dfth_pthread_rwlock_unlock_rd(dfth_pthread_rwlock_t* l) {
  l->rdunlock();
  return 0;
}
inline int dfth_pthread_rwlock_unlock_wr(dfth_pthread_rwlock_t* l) {
  l->wrunlock();
  return 0;
}

// -- semaphores (sem_t) ---------------------------------------------------------------

inline int dfth_sem_init(dfth_sem_t* s, int, unsigned value) {
  // sem_t semantics: (re)initialize in place; the object must not be in use.
  s->~dfth_sem_t();
  new (s) dfth_sem_t(static_cast<int>(value));
  return 0;
}
inline int dfth_sem_destroy(dfth_sem_t*) { return 0; }
inline int dfth_sem_wait(dfth_sem_t* s) {
  s->acquire();
  return 0;
}
inline int dfth_sem_trywait(dfth_sem_t* s) { return s->try_acquire() ? 0 : 11; }
inline int dfth_sem_post(dfth_sem_t* s) {
  s->release();
  return 0;
}

// -- barriers ----------------------------------------------------------------------

inline int dfth_pthread_barrier_init(dfth_pthread_barrier_t* b, const void*,
                                     unsigned count) {
  *b = new dfth::Barrier(static_cast<int>(count));
  return 0;
}
inline int dfth_pthread_barrier_destroy(dfth_pthread_barrier_t* b) {
  delete *b;
  *b = nullptr;
  return 0;
}
inline int dfth_pthread_barrier_wait(dfth_pthread_barrier_t* b) {
  (*b)->arrive_and_wait();
  return 0;
}

// -- once & thread-specific data ------------------------------------------------------

inline int dfth_pthread_once(dfth_pthread_once_t* once, void (*fn)()) {
  once->call(fn);
  return 0;
}
inline int dfth_pthread_key_create(dfth_pthread_key_t* key, void (*)(void*) = nullptr) {
  *key = dfth::tls_create_key();
  return 0;
}
inline int dfth_pthread_setspecific(dfth_pthread_key_t key, const void* value) {
  dfth::tls_set(key, const_cast<void*>(value));
  return 0;
}
inline void* dfth_pthread_getspecific(dfth_pthread_key_t key) {
  return dfth::tls_get(key);
}

// -- optional unprefixed aliases --------------------------------------------------------

#ifdef DFTH_PTHREAD_ALIASES
#define pthread_t dfth_pthread_t
#define pthread_attr_t dfth_pthread_attr_t
#define pthread_mutex_t dfth_pthread_mutex_t
#define pthread_cond_t dfth_pthread_cond_t
#define pthread_create dfth_pthread_create
#define pthread_join dfth_pthread_join
#define pthread_detach dfth_pthread_detach
#define pthread_self dfth_pthread_self
#define pthread_mutex_init dfth_pthread_mutex_init
#define pthread_mutex_lock dfth_pthread_mutex_lock
#define pthread_mutex_trylock dfth_pthread_mutex_trylock
#define pthread_mutex_unlock dfth_pthread_mutex_unlock
#define pthread_mutex_destroy dfth_pthread_mutex_destroy
#define pthread_cond_init dfth_pthread_cond_init
#define pthread_cond_wait dfth_pthread_cond_wait
#define pthread_cond_signal dfth_pthread_cond_signal
#define pthread_cond_broadcast dfth_pthread_cond_broadcast
#define pthread_cond_destroy dfth_pthread_cond_destroy
#define sched_yield dfth_sched_yield
#endif  // DFTH_PTHREAD_ALIASES
