#include "obs/trace.h"

#include <algorithm>

namespace dfth::obs {
namespace {

Tracer* g_tracer = nullptr;

/// Map an event kind to the counter it implies, so engines don't have to
/// pair every DFTH_TRACE_EMIT with a DFTH_COUNT. Alloc/free and stack
/// events return kCount (no auto-bump): their counters must count *every*
/// operation, not just those above the event threshold, so the heap and
/// stack pool bump them at the source.
Counter auto_counter(EvKind kind) {
  switch (kind) {
    case EvKind::Fork: return Counter::Forks;
    case EvKind::Join: return Counter::Joins;
    case EvKind::Dispatch: return Counter::Dispatches;
    case EvKind::Preempt: return Counter::Preempts;
    case EvKind::QuotaExhaust: return Counter::QuotaExhausts;
    case EvKind::DummySpawn: return Counter::DummySpawns;
    case EvKind::Block: return Counter::Blocks;
    case EvKind::Wake: return Counter::Wakes;
    case EvKind::Exit: return Counter::Exits;
    case EvKind::Steal:
    case EvKind::StackFresh:
    case EvKind::StackReuse:
    case EvKind::Alloc:
    case EvKind::Free:
    case EvKind::kCount: break;
  }
  return Counter::kCount;
}

}  // namespace

const char* to_string(EvKind k) {
  switch (k) {
    case EvKind::Fork: return "fork";
    case EvKind::Join: return "join";
    case EvKind::Dispatch: return "dispatch";
    case EvKind::Preempt: return "preempt";
    case EvKind::QuotaExhaust: return "quota_exhaust";
    case EvKind::DummySpawn: return "dummy_spawn";
    case EvKind::Steal: return "steal";
    case EvKind::Block: return "block";
    case EvKind::Wake: return "wake";
    case EvKind::Exit: return "exit";
    case EvKind::StackFresh: return "stack_fresh";
    case EvKind::StackReuse: return "stack_reuse";
    case EvKind::Alloc: return "alloc";
    case EvKind::Free: return "free";
    case EvKind::kCount: break;
  }
  return "?";
}

// -- TraceRing ----------------------------------------------------------------

TraceRing::TraceRing(std::size_t capacity) : buf_(capacity > 0 ? capacity : 1) {}

void TraceRing::push(const TraceEvent& ev) {
  const std::size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  if (idx < buf_.size()) {
    buf_[idx] = ev;
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t TraceRing::size() const {
  return std::min(next_.load(std::memory_order_relaxed), buf_.size());
}

std::vector<TraceEvent> TraceRing::drain() const {
  return {buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(size())};
}

// -- Tracer -------------------------------------------------------------------

Tracer::Tracer(TraceConfig cfg) : cfg_(cfg) {}

void Tracer::begin_run(int lanes, std::function<std::uint64_t()> clock) {
  rings_.clear();
  for (int i = 0; i < std::max(lanes, 1); ++i) {
    rings_.push_back(std::make_unique<TraceRing>(cfg_.ring_capacity));
  }
  samples_.clear();
  clock_ = std::move(clock);
  for (auto& c : counter_snapshot_) c = 0;
  for (auto& h : hist_snapshot_) h = HistSnapshot{};
  counters().reset();
  histograms().reset();
}

void Tracer::end_run() {
  for (int c = 0; c < kNumCounters; ++c) {
    counter_snapshot_[c] = counters().value(static_cast<Counter>(c));
  }
  for (int h = 0; h < kNumHists; ++h) {
    hist_snapshot_[h] = histograms().snapshot(static_cast<Hist>(h));
  }
  clock_ = nullptr;
}

void Tracer::emit(int lane, EvKind kind, std::uint64_t tid, std::uint64_t arg) {
  emit_at(lane, kind, now(), tid, arg);
}

void Tracer::emit_at(int lane, EvKind kind, std::uint64_t ts_ns,
                     std::uint64_t tid, std::uint64_t arg) {
  if (rings_.empty()) return;
  const auto idx = std::min(static_cast<std::size_t>(lane < 0 ? 0 : lane),
                            rings_.size() - 1);
  TraceEvent ev;
  ev.ts_ns = ts_ns;
  ev.tid = tid;
  ev.arg = arg;
  ev.lane = static_cast<std::uint16_t>(idx);
  ev.kind = kind;
  rings_[idx]->push(ev);
  const Counter c = auto_counter(kind);
  if (c != Counter::kCount) counters().inc(c);
}

std::vector<TraceEvent> Tracer::lane_events(int lane) const {
  if (lane < 0 || static_cast<std::size_t>(lane) >= rings_.size()) return {};
  return rings_[static_cast<std::size_t>(lane)]->drain();
}

std::vector<TraceEvent> Tracer::merged() const {
  std::vector<TraceEvent> all;
  all.reserve(event_count());
  for (const auto& ring : rings_) {
    auto events = ring->drain();
    all.insert(all.end(), events.begin(), events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const auto& ring : rings_) n += ring->size();
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t n = 0;
  for (const auto& ring : rings_) n += ring->dropped();
  return n;
}

Tracer* tracer() { return g_tracer; }

namespace detail {
void set_tracer(Tracer* t) { g_tracer = t; }
}  // namespace detail

}  // namespace dfth::obs
