#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace dfth::obs {
namespace {

std::atomic<Profiler*> g_profiler{nullptr};

/// The displayed site name keeps only the basename — source_location hands
/// us full build-tree paths, which would make every collapsed stack as wide
/// as the checkout path.
std::string site_label(const std::string& file, int line) {
  const std::size_t slash = file.find_last_of('/');
  std::string base =
      slash == std::string::npos ? file : file.substr(slash + 1);
  if (line <= 0) return base;
  char buf[32];
  std::snprintf(buf, sizeof buf, ":%d", line);
  return base + buf;
}

}  // namespace

Profiler* profiler() { return g_profiler.load(std::memory_order_relaxed); }

namespace detail {
void set_profiler(Profiler* p) {
  g_profiler.store(p, std::memory_order_release);
}
}  // namespace detail

Profiler::Profiler() { begin_run(); }

Profiler::~Profiler() {
  // A session must not outlive installation (engines uninstall before
  // returning), but guard against a caller destroying an installed one.
  if (profiler() == this) detail::set_profiler(nullptr);
}

void Profiler::begin_run() {
  Guard g(mu_);
  fibers_.clear();
  sites_.clear();
  site_ids_.clear();
  trie_.clear();
  trie_children_.clear();
  arena_.clear();
  work_ns_ = overhead_ns_ = fiber_count_ = 0;
  max_span_ns_ = max_burden_ns_ = 0;
  crit_head_ = nullptr;
  stats_ = ProfileStats{};
  elapsed_us_ = 0;
  nprocs_ = 0;
  sites_.push_back({"main", 0});
  trie_.push_back({0, 0, 0});
}

void Profiler::end_run(double elapsed_us, int nprocs) {
  Guard g(mu_);
  // Fibers still live at the end of the run (the caller's root, anything
  // blocked at teardown) compete for the span with their current value.
  for (Fiber& f : fibers_) {
    if (!f.seen || f.finished) continue;
    if (f.span_ns > max_span_ns_) {
      max_span_ns_ = f.span_ns;
      crit_head_ = f.head;
    }
    max_burden_ns_ = std::max(max_burden_ns_, f.burden_ns);
  }
  stats_.enabled = true;
  stats_.work_ns = work_ns_;
  stats_.span_ns = max_span_ns_;
  stats_.burdened_span_ns = std::max(max_burden_ns_, max_span_ns_);
  stats_.overhead_ns = overhead_ns_;
  stats_.fibers = fiber_count_;
  elapsed_us_ = elapsed_us;
  nprocs_ = nprocs;
}

Profiler::Fiber& Profiler::fiber(std::uint64_t tid) {
  if (tid >= fibers_.size()) fibers_.resize(tid + 1);
  return fibers_[tid];
}

std::uint32_t Profiler::intern_site(const char* file, int line) {
  std::string key = (file ? file : "?");
  key += ':';
  key += std::to_string(line);
  auto it = site_ids_.find(key);
  if (it != site_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(sites_.size());
  sites_.push_back({file ? file : "?", line});
  site_ids_.emplace(std::move(key), id);
  return id;
}

std::uint32_t Profiler::trie_child(std::uint32_t parent, std::uint32_t site) {
  const std::uint64_t key = (static_cast<std::uint64_t>(parent) << 32) | site;
  auto it = trie_children_.find(key);
  if (it != trie_children_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(trie_.size());
  trie_.push_back({parent, site, 0});
  trie_children_.emplace(key, id);
  return id;
}

std::string Profiler::stack_string(std::uint32_t node) const {
  std::vector<std::uint32_t> path;
  for (std::uint32_t n = node; n != 0; n = trie_[n].parent) path.push_back(n);
  std::string out = "main";
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const Site& s = sites_[trie_[*it].site];
    out += ';';
    out += site_label(s.file, s.line);
  }
  return out;
}

void Profiler::accrue_ledger(Fiber& f, std::uint64_t ns) {
  if (f.head_owned && f.head && f.head->node == f.node) {
    f.head->ns += ns;
    return;
  }
  arena_.push_back({f.node, ns, f.head});
  f.head = &arena_.back();
  f.head_owned = true;
}

void Profiler::flush_offset(Fiber& f, std::uint64_t offset_ns) {
  if (offset_ns <= f.prepaid_ns) return;
  const std::uint64_t amount = offset_ns - f.prepaid_ns;
  f.prepaid_ns = offset_ns;
  f.span_ns += amount;
  f.burden_ns += amount;
  work_ns_ += amount;
  trie_[f.node].self_work_ns += amount;
  accrue_ledger(f, amount);
}

void Profiler::thread_start(std::uint64_t child, std::uint64_t parent,
                            std::uint64_t offset_ns, const char* file,
                            int line) {
  Guard g(mu_);
  ++fiber_count_;
  // Resolve the parent *before* fiber(child) — that call may grow fibers_
  // and invalidate references.
  std::uint64_t base_span = 0, base_burden = 0;
  Ledger* base_head = nullptr;
  std::uint32_t parent_node = 0;
  if (parent != 0) {
    Fiber& p = fiber(parent);
    flush_offset(p, offset_ns);  // materialize uncharged work before sharing
    base_span = p.span_ns;
    base_burden = p.burden_ns;
    base_head = p.head;
    parent_node = p.node;
    seal(p);  // the child now shares the parent's ledger
  }
  Fiber& c = fiber(child);
  c.seen = true;
  c.finished = false;
  c.span_ns = base_span;
  c.burden_ns = base_burden;
  c.prepaid_ns = 0;
  c.head = base_head;
  c.head_owned = false;
  c.node = trie_child(parent_node, intern_site(file, line));
}

void Profiler::work(std::uint64_t tid, std::uint64_t ns) {
  if (ns == 0) return;
  Guard g(mu_);
  Fiber& f = fiber(tid);
  f.seen = true;
  // Edges may have flushed part of this charge already (prepaid); only the
  // remainder lands now. `ns` covers the same interval the offsets came
  // from, so ns >= prepaid — the max() is a defensive clamp.
  const std::uint64_t amount = ns > f.prepaid_ns ? ns - f.prepaid_ns : 0;
  f.prepaid_ns = 0;
  if (amount == 0) return;
  f.span_ns += amount;
  f.burden_ns += amount;
  work_ns_ += amount;
  trie_[f.node].self_work_ns += amount;
  accrue_ledger(f, amount);
}

void Profiler::overhead(std::uint64_t tid, std::uint64_t ns) {
  (void)tid;
  if (ns == 0) return;
  Guard g(mu_);
  overhead_ns_ += ns;
}

void Profiler::dispatch(std::uint64_t tid, std::uint64_t overhead_ns,
                        std::uint64_t gap_ns) {
  Guard g(mu_);
  overhead_ns_ += overhead_ns;
  Fiber& f = fiber(tid);
  f.burden_ns += overhead_ns + gap_ns;
}

void Profiler::fork_cost(std::uint64_t child, std::uint64_t ns) {
  if (ns == 0) return;
  Guard g(mu_);
  overhead_ns_ += ns;
  fiber(child).burden_ns += ns;
}

void Profiler::join_edge(std::uint64_t joiner, std::uint64_t child,
                         std::uint64_t offset_ns) {
  Guard g(mu_);
  // Two fiber() calls: take references one at a time (resize invalidates).
  flush_offset(fiber(joiner), offset_ns);
  const std::uint64_t child_span = fiber(child).span_ns;
  const std::uint64_t child_burden = fiber(child).burden_ns;
  Ledger* child_head = fiber(child).head;
  fiber(child).head_owned = false;
  Fiber& j = fiber(joiner);
  if (child_span > j.span_ns) {
    j.span_ns = child_span;
    j.head = child_head;
    j.head_owned = false;
  }
  j.burden_ns = std::max(j.burden_ns, child_burden);
}

void Profiler::wake_edge(std::uint64_t waker, std::uint64_t wakee,
                         std::uint64_t offset_ns) {
  Guard g(mu_);
  flush_offset(fiber(waker), offset_ns);
  const std::uint64_t waker_span = fiber(waker).span_ns;
  const std::uint64_t waker_burden = fiber(waker).burden_ns;
  Ledger* waker_head = fiber(waker).head;
  fiber(waker).head_owned = false;
  Fiber& e = fiber(wakee);
  if (waker_span > e.span_ns) {
    e.span_ns = waker_span;
    e.head = waker_head;
    e.head_owned = false;
  }
  e.burden_ns = std::max(e.burden_ns, waker_burden);
}

void Profiler::steal(std::uint64_t tid, std::uint64_t burden_ns) {
  if (burden_ns == 0) return;
  Guard g(mu_);
  fiber(tid).burden_ns += burden_ns;
}

void Profiler::exit_fiber(std::uint64_t tid, std::uint64_t offset_ns) {
  if (offset_ns != 0) work(tid, offset_ns);
  Guard g(mu_);
  Fiber& f = fiber(tid);
  f.finished = true;
  seal(f);
  if (f.span_ns > max_span_ns_) {
    max_span_ns_ = f.span_ns;
    crit_head_ = f.head;
  }
  max_burden_ns_ = std::max(max_burden_ns_, f.burden_ns);
}

std::vector<CritSegment> Profiler::critical_path() const {
  Guard g(mu_);
  std::map<std::uint32_t, std::uint64_t> by_node;
  for (const Ledger* l = crit_head_; l; l = l->prev) by_node[l->node] += l->ns;
  std::vector<CritSegment> out;
  out.reserve(by_node.size());
  for (const auto& [node, ns] : by_node) out.push_back({stack_string(node), ns});
  std::sort(out.begin(), out.end(),
            [](const CritSegment& a, const CritSegment& b) {
              return a.ns != b.ns ? a.ns > b.ns : a.stack < b.stack;
            });
  return out;
}

std::vector<CollapsedLine> Profiler::collapsed() const {
  Guard g(mu_);
  std::vector<CollapsedLine> out;
  for (const Node& n : trie_) {
    if (n.self_work_ns == 0) continue;
    out.push_back(
        {stack_string(static_cast<std::uint32_t>(&n - trie_.data())),
         n.self_work_ns});
  }
  std::sort(out.begin(), out.end(),
            [](const CollapsedLine& a, const CollapsedLine& b) {
              return a.work_ns != b.work_ns ? a.work_ns > b.work_ns
                                            : a.stack < b.stack;
            });
  return out;
}

}  // namespace dfth::obs
