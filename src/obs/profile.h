// Work/span parallelism profiler — measures *available* parallelism, not
// just achieved time.
//
// The paper's claim is that lightweight threads expose the parallelism of
// dynamic, irregular programs; this layer is the instrument that says how
// much parallelism a run actually had. Following the Cilkview/Cilkprof
// lineage it computes, online, over the same fork/join DAG the race
// detector orders:
//
//   work  T1     — the sum of every pure fiber charge (compute, tracked
//                  allocation, sync operations, join bookkeeping): what one
//                  processor would need with zero scheduling.
//   span  T_inf  — the longest dependency chain of those charges. Each
//                  fiber carries the span of its history; a fork hands the
//                  parent's current span to the child, a join takes the max
//                  over joiner and child, a wake takes the max over waker
//                  and wakee — the exact hook sites the happens-before race
//                  detector uses for its vector-clock edges.
//   burdened span — span plus per-edge scheduling burden: every dispatch is
//                  charged its observed scheduler-lock + context-switch cost
//                  and the lane's idle gap before it, every fork its
//                  creation cost, every steal its observed latency. This is
//                  the Cilkview "burdened" curve: what the critical path
//                  costs on a real scheduler rather than an ideal one.
//   overhead     — all lane-side scheduler time (dispatch, fork, exit,
//                  preempt, lock contention). Together with work it accounts
//                  for every non-idle lane nanosecond, which SimEngine makes
//                  an exact, testable invariant:
//                      work + overhead == nprocs * elapsed - idle.
//
// Predictions (see ProfileStats in runtime/run_stats.h):
//   lower bound  max((work+overhead)/p, span)      — both terms are floors
//   upper bound  (work+overhead)/p + burdened_span — Brent with burden
// Measured T_p must land between them; tests/obs/profile_test.cpp holds the
// simulator to that bracket.
//
// Attribution: every fiber is keyed by its *spawn-site stack* (the chain of
// df_create/dfth::spawn call sites that created it, captured via
// std::source_location). Two outputs per run:
//   * critical-path attribution — which spawn sites lie on the span and for
//     how many ns (a persistent cons-list ledger rides along the span
//     propagation, so this is exact: the segments sum to span_ns);
//   * collapsed stacks — total work per spawn-site stack, in the
//     "semicolon-stack value" format speedscope and flamegraph.pl load.
//
// Cost discipline mirrors obs/trace.h: every hook goes through a
// DFTH_PROF_* macro that expands to ((void)0) when the build does not set
// -DDFTH_PROF (tests/obs stringify the expansion); with profiling compiled
// in but no Profiler installed, a hook is one relaxed pointer load and a
// branch. Recording takes a spin lock — the profiler favours exactness over
// the tracer's lock-freedom, which is fine at fork/join/dispatch frequency.
//
// Clock caveat (RealEngine): charges are steady-clock slice durations
// measured on different kernel threads, so span edges mix timestamps from
// different cores. The identities above hold only as tightly as the host's
// clock synchronization; SimEngine's virtual clock is exact. DESIGN.md §10.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/run_stats.h"

namespace dfth::obs {

#if DFTH_PROF
inline constexpr bool kProfEnabled = true;
#else
inline constexpr bool kProfEnabled = false;
#endif

/// One segment of critical-path attribution: the spawn-site stack of the
/// fiber(s) that executed it, and how many span nanoseconds they carried.
struct CritSegment {
  std::string stack;    ///< "main;matmul.cpp:57;matmul.cpp:57"
  std::uint64_t ns = 0;
};

/// One collapsed-stack line: total work charged to fibers with this
/// spawn-site stack. `stack + " " + ns` is the folded format flamegraph.pl
/// and speedscope consume.
struct CollapsedLine {
  std::string stack;
  std::uint64_t work_ns = 0;
};

/// A profiling session. Caller-owned (RuntimeOptions::profiler points at
/// one); the engine installs it for the duration of run(), feeds it through
/// the DFTH_PROF_* hooks, and merges its ProfileStats into RunStats.
class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // -- engine-side lifecycle --------------------------------------------------
  /// Clears previous results and re-arms the accumulators.
  void begin_run();
  /// Folds still-live fibers into the span, freezes ProfileStats and
  /// remembers the run's measured time for the what-if report.
  void end_run(double elapsed_us, int nprocs);

  // -- hook backend (called through the DFTH_PROF_* macros) -------------------
  /// Registers fiber `child` spawned by `parent` at `file:line`; the child
  /// inherits the parent's span as of the fork instant. `offset_ns` is work
  /// the parent has accrued but not yet charged through work() (SimEngine
  /// pending charges / RealEngine partial slice), so edges are exact.
  /// parent == 0 registers a root with no inherited history.
  void thread_start(std::uint64_t child, std::uint64_t parent,
                    std::uint64_t offset_ns, const char* file, int line);
  /// Charges `ns` of pure fiber time: work, span and burden all advance.
  void work(std::uint64_t tid, std::uint64_t ns);
  /// Charges `ns` of lane-side scheduler time not tied to a dispatch edge
  /// (exit bookkeeping, preempt switch, sleeper fire, lock contention).
  void overhead(std::uint64_t tid, std::uint64_t ns);
  /// A dispatch of `tid`: `overhead_ns` (lock + context switch) counts as
  /// scheduler overhead and burdens the fiber; `gap_ns` (lane idle time
  /// before the dispatch) burdens the fiber only.
  void dispatch(std::uint64_t tid, std::uint64_t overhead_ns,
                std::uint64_t gap_ns);
  /// Fork cost of creating `child` (create + stack): overhead + child burden.
  void fork_cost(std::uint64_t child, std::uint64_t ns);
  /// Join edge: joiner's span becomes max(its own, the joined child's final
  /// span). `offset_ns` is the joiner's uncharged work, as in thread_start.
  void join_edge(std::uint64_t joiner, std::uint64_t child,
                 std::uint64_t offset_ns);
  /// Wake edge (sync-object happens-before): wakee's span becomes
  /// max(its own, the waker's current span). `offset_ns` is the waker's
  /// uncharged work.
  void wake_edge(std::uint64_t waker, std::uint64_t wakee,
                 std::uint64_t offset_ns);
  /// A steal of `tid`: burden the fiber with the observed steal latency.
  void steal(std::uint64_t tid, std::uint64_t burden_ns);
  /// Fiber `tid` finished; its span is final and competes for the run span.
  void exit_fiber(std::uint64_t tid, std::uint64_t offset_ns);

  // -- results (valid after end_run) -----------------------------------------
  const ProfileStats& stats() const { return stats_; }
  double elapsed_us() const { return elapsed_us_; }
  int nprocs() const { return nprocs_; }
  /// Critical-path attribution, largest segment first. Segments sum to
  /// exactly stats().span_ns.
  std::vector<CritSegment> critical_path() const;
  /// Collapsed work-per-spawn-stack lines (folded flamegraph input),
  /// largest first. Lines sum to exactly stats().work_ns.
  std::vector<CollapsedLine> collapsed() const;

 private:
  /// Cons-list ledger node: `ns` of span carried at spawn-stack `node`.
  /// Nodes are immutable once shared (fork/join/wake seal the head), so the
  /// winning path at a join can be adopted by pointer.
  struct Ledger {
    std::uint32_t node;
    std::uint64_t ns;
    Ledger* prev;
  };
  struct Fiber {
    bool seen = false;
    bool finished = false;
    std::uint32_t node = 0;        ///< spawn-stack trie node
    std::uint64_t span_ns = 0;
    std::uint64_t burden_ns = 0;   ///< span + scheduling burden
    /// Uncharged work already materialized into span/ledger by an edge's
    /// offset_ns; the next work() deducts it so nothing double-counts.
    std::uint64_t prepaid_ns = 0;
    Ledger* head = nullptr;
    bool head_owned = false;       ///< may mutate head->ns in place
  };
  /// Spawn-site stack trie: node 0 is the root ("main"); a child per
  /// distinct (parent, spawn site).
  struct Node {
    std::uint32_t parent = 0;
    std::uint32_t site = 0;
    std::uint64_t self_work_ns = 0;  ///< work charged to fibers at this stack
  };
  struct Site {
    std::string file;
    int line = 0;
  };

  struct SpinLock {
    std::atomic_flag flag = ATOMIC_FLAG_INIT;
    void lock() {
      while (flag.test_and_set(std::memory_order_acquire)) {
      }
    }
    void unlock() { flag.clear(std::memory_order_release); }
  };
  struct Guard {
    explicit Guard(SpinLock& l) : l_(l) { l_.lock(); }
    ~Guard() { l_.unlock(); }
    SpinLock& l_;
  };

  Fiber& fiber(std::uint64_t tid);
  std::uint32_t intern_site(const char* file, int line);
  std::uint32_t trie_child(std::uint32_t parent, std::uint32_t site);
  std::string stack_string(std::uint32_t node) const;
  void accrue_ledger(Fiber& f, std::uint64_t ns);
  /// Materializes a fiber's uncharged-at-edge work (`offset_ns`) as real
  /// charges — span, burden, work and ledger advance together, so adopted
  /// ledgers always sum to the span they carry. Idempotent per offset: only
  /// the delta beyond what is already prepaid lands.
  void flush_offset(Fiber& f, std::uint64_t offset_ns);
  void seal(Fiber& f) { f.head_owned = false; }

  mutable SpinLock mu_;
  std::vector<Fiber> fibers_;
  std::vector<Site> sites_;
  std::unordered_map<std::string, std::uint32_t> site_ids_;
  std::vector<Node> trie_;
  std::unordered_map<std::uint64_t, std::uint32_t> trie_children_;
  std::deque<Ledger> arena_;

  std::uint64_t work_ns_ = 0;
  std::uint64_t overhead_ns_ = 0;
  std::uint64_t fiber_count_ = 0;
  std::uint64_t max_span_ns_ = 0;
  std::uint64_t max_burden_ns_ = 0;
  Ledger* crit_head_ = nullptr;  ///< ledger of the span-winning fiber

  ProfileStats stats_;
  double elapsed_us_ = 0;
  int nprocs_ = 0;
};

/// The active profiling session, or nullptr when none is installed. Engines
/// install opts.profiler at run() entry and clear it before returning.
Profiler* profiler();

namespace detail {
void set_profiler(Profiler* p);
}

}  // namespace dfth::obs

// Hook macros. OFF builds must expand to exactly ((void)0) — tests/obs
// stringifies the expansion to prove no profiler symbol survives.
#if DFTH_PROF
#define DFTH_PROF_HOOK(call)                                           \
  do {                                                                 \
    if (::dfth::obs::Profiler* dfth_pr_ = ::dfth::obs::profiler()) {   \
      dfth_pr_->call;                                                  \
    }                                                                  \
  } while (0)
#define DFTH_PROF_THREAD_START(child, parent, offset_ns, file, line) \
  DFTH_PROF_HOOK(thread_start((child), (parent), (offset_ns), (file), (line)))
#define DFTH_PROF_WORK(tid, ns) DFTH_PROF_HOOK(work((tid), (ns)))
#define DFTH_PROF_OVERHEAD(tid, ns) DFTH_PROF_HOOK(overhead((tid), (ns)))
#define DFTH_PROF_DISPATCH(tid, overhead_ns, gap_ns) \
  DFTH_PROF_HOOK(dispatch((tid), (overhead_ns), (gap_ns)))
#define DFTH_PROF_FORK_COST(child, ns) DFTH_PROF_HOOK(fork_cost((child), (ns)))
#define DFTH_PROF_JOIN(joiner, child, offset_ns) \
  DFTH_PROF_HOOK(join_edge((joiner), (child), (offset_ns)))
#define DFTH_PROF_WAKE(waker, wakee, offset_ns) \
  DFTH_PROF_HOOK(wake_edge((waker), (wakee), (offset_ns)))
#define DFTH_PROF_STEAL(tid, burden_ns) \
  DFTH_PROF_HOOK(steal((tid), (burden_ns)))
#define DFTH_PROF_EXIT(tid, offset_ns) \
  DFTH_PROF_HOOK(exit_fiber((tid), (offset_ns)))
#else
#define DFTH_PROF_THREAD_START(child, parent, offset_ns, file, line) ((void)0)
#define DFTH_PROF_WORK(tid, ns) ((void)0)
#define DFTH_PROF_OVERHEAD(tid, ns) ((void)0)
#define DFTH_PROF_DISPATCH(tid, overhead_ns, gap_ns) ((void)0)
#define DFTH_PROF_FORK_COST(child, ns) ((void)0)
#define DFTH_PROF_JOIN(joiner, child, offset_ns) ((void)0)
#define DFTH_PROF_WAKE(waker, wakee, offset_ns) ((void)0)
#define DFTH_PROF_STEAL(tid, burden_ns) ((void)0)
#define DFTH_PROF_EXIT(tid, offset_ns) ((void)0)
#endif
