// Event tracer — per-lane ring buffers of timestamped scheduler events.
//
// The paper's entire evaluation is observability (Figure 1 is a time series
// of live threads, Figure 6 an execution-time breakdown, Figure 9 memory
// over time), but aggregates alone cannot explain *why* a scheduler
// misbehaved. This layer records the raw events — fork, join, dispatch,
// preempt, quota exhaustion, dummy spawn, steal, stack fresh/reuse, large
// alloc/free — with one ring buffer per lane (virtual processor in
// SimEngine, kernel-thread worker in RealEngine, plus one "external" lane
// for bound threads), and a time-series sampler for live-thread count, heap
// and stack footprint, and ready-queue depth.
//
// Timestamps are virtual nanoseconds under SimEngine and steady-clock
// nanoseconds since run start under RealEngine, so the same exporters
// (obs/export.h) serve both engines.
//
// Cost discipline:
//  * compile-time: every hook goes through DFTH_TRACE_EMIT / DFTH_COUNT,
//    which expand to ((void)0) when the build does not set -DDFTH_TRACE
//    (tests/obs verify the expansion is literally empty);
//  * run-time: with tracing compiled in but no Tracer installed, a hook is
//    one relaxed pointer load and a branch;
//  * recording: a ring push is one relaxed fetch_add plus a 24-byte store —
//    no locks. Rings never grow; on overflow new events are dropped and the
//    drop is *counted*, never silent.
//
// Writer contract: each lane is written by the kernel thread that owns it
// (lock-free SPSC in the common case). The reservation index is atomic, so
// the shared "external" lane tolerates multiple writers (MPSC); rings are
// only read after the run quiesces (worker join provides the
// happens-before edge).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/counters.h"

namespace dfth::obs {

#if DFTH_TRACE
inline constexpr bool kTraceEnabled = true;
#else
inline constexpr bool kTraceEnabled = false;
#endif

enum class EvKind : std::uint8_t {
  Fork,          ///< tid = parent, arg = child id
  Join,          ///< tid = joiner, arg = joined id
  Dispatch,      ///< tid runs on this lane; arg = dispatch count
  Preempt,       ///< runnable tid switched out; arg = PreemptReason
  QuotaExhaust,  ///< df_malloc drove tid's quota to zero; arg = bytes
  DummySpawn,    ///< tid = parent, arg = dummy child id
  Steal,         ///< tid stolen onto this lane; arg = victim proc/cluster
  Block,         ///< tid blocked (join or sync object)
  Wake,          ///< tid made runnable; arg = waker id
  Exit,          ///< tid exited
  StackFresh,    ///< fresh stack mapped for tid; arg = bytes
  StackReuse,    ///< pooled stack reused for tid; arg = bytes
  Alloc,         ///< df_malloc ≥ threshold by tid; arg = bytes
  Free,          ///< df_free ≥ threshold by tid; arg = bytes
  kCount,
};

const char* to_string(EvKind k);

enum PreemptReason : std::uint64_t {
  kPreemptYield = 1,
  kPreemptQuota = 2,
  kPreemptForkDive = 3,  ///< parent preempted so the child runs (AsyncDF/WS)
  kPreemptOom = 4,       ///< heap exhaustion treated as quota exhaustion
  kPreemptDeadline = 5,  ///< cancel-token deadline fired at this dispatch
};

struct TraceEvent {
  std::uint64_t ts_ns = 0;
  std::uint64_t tid = 0;
  std::uint64_t arg = 0;
  std::uint16_t lane = 0;
  EvKind kind = EvKind::Fork;
};

/// Fixed-capacity event ring. Keeps the *earliest* events (overflow drops
/// the new event and counts it): start-of-run behaviour is what the
/// dispatch-gap and Fig-1-shape analyses need, and keep-first makes the
/// slot write unconditionally race-free under concurrent reservation.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void push(const TraceEvent& ev);

  std::size_t size() const;
  std::size_t capacity() const { return buf_.size(); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Events in write order. Only valid once all writers have quiesced.
  std::vector<TraceEvent> drain() const;

 private:
  std::vector<TraceEvent> buf_;
  std::atomic<std::size_t> next_{0};  ///< reservation index (may exceed capacity)
  std::atomic<std::uint64_t> dropped_{0};
};

/// One point of the live-thread / footprint / ready-depth time series
/// (Figures 1 and 9 are exactly these curves).
struct Sample {
  std::uint64_t ts_ns = 0;
  std::int64_t live_threads = 0;
  std::int64_t heap_bytes = 0;
  std::int64_t stack_bytes = 0;
  std::int64_t ready = 0;
};

struct TraceConfig {
  std::size_t ring_capacity = 1 << 16;     ///< events per lane
  std::uint64_t sample_interval_ns = 0;    ///< 0 = engine-chosen default
  std::uint64_t alloc_event_min_bytes = 4096;  ///< Alloc/Free event threshold
};

/// A trace session. Caller-owned (RuntimeOptions::tracer points at one);
/// the engine installs it for the duration of run() and stamps events
/// through the engine-supplied clock.
class Tracer {
 public:
  explicit Tracer(TraceConfig cfg = {});

  // -- engine-side lifecycle --------------------------------------------------
  /// Clears previous results, resets the global counter registry and arms
  /// `lanes` rings. `clock` supplies event timestamps (virtual ns in Sim,
  /// steady-clock ns since run start in Real).
  void begin_run(int lanes, std::function<std::uint64_t()> clock);
  /// Snapshots the counter registry and drops the clock (whose captures may
  /// dangle once the engine is destroyed).
  void end_run();

  void emit(int lane, EvKind kind, std::uint64_t tid, std::uint64_t arg);
  void emit_at(int lane, EvKind kind, std::uint64_t ts_ns, std::uint64_t tid,
               std::uint64_t arg);
  void add_sample(const Sample& s) { samples_.push_back(s); }

  std::uint64_t now() const { return clock_ ? clock_() : 0; }
  const TraceConfig& config() const { return cfg_; }

  // -- results (valid after end_run) -----------------------------------------
  int lanes() const { return static_cast<int>(rings_.size()); }
  /// One lane's events in write order (per-lane timestamps are monotone for
  /// single-writer lanes).
  std::vector<TraceEvent> lane_events(int lane) const;
  /// All lanes merged, stably sorted by timestamp.
  std::vector<TraceEvent> merged() const;
  std::size_t event_count() const;
  std::uint64_t dropped() const;
  const std::vector<Sample>& samples() const { return samples_; }
  /// Counter value snapshotted at end_run().
  std::uint64_t counter(Counter c) const {
    return counter_snapshot_[static_cast<int>(c)];
  }
  /// Histogram snapshotted at end_run() (p50/p99/p999 come from here).
  const HistSnapshot& hist(Hist h) const {
    return hist_snapshot_[static_cast<int>(h)];
  }

 private:
  TraceConfig cfg_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::vector<Sample> samples_;
  std::function<std::uint64_t()> clock_;
  std::uint64_t counter_snapshot_[kNumCounters] = {};
  HistSnapshot hist_snapshot_[kNumHists] = {};
};

/// The active trace session, or nullptr when none is installed. Engines
/// install opts.tracer at run() entry and clear it before returning.
Tracer* tracer();

namespace detail {
void set_tracer(Tracer* t);
}

}  // namespace dfth::obs

// Hook macros. OFF builds must expand to exactly ((void)0) — tests/obs
// stringifies the expansion to prove no tracer symbol survives.
#if DFTH_TRACE
#define DFTH_TRACE_EMIT(lane, kind, tid, arg)                      \
  do {                                                             \
    if (::dfth::obs::Tracer* dfth_tr_ = ::dfth::obs::tracer()) {   \
      dfth_tr_->emit((lane), (kind), (tid), (arg));                \
    }                                                              \
  } while (0)
#define DFTH_TRACE_EMIT_AT(lane, kind, ts, tid, arg)               \
  do {                                                             \
    if (::dfth::obs::Tracer* dfth_tr_ = ::dfth::obs::tracer()) {   \
      dfth_tr_->emit_at((lane), (kind), (ts), (tid), (arg));       \
    }                                                              \
  } while (0)
#define DFTH_TRACE_ALLOC_EVENT(lane, kind, tid, bytes)             \
  do {                                                             \
    if (::dfth::obs::Tracer* dfth_tr_ = ::dfth::obs::tracer()) {   \
      if (static_cast<std::uint64_t>(bytes) >=                     \
          dfth_tr_->config().alloc_event_min_bytes) {              \
        dfth_tr_->emit((lane), (kind), (tid), (bytes));            \
      }                                                            \
    }                                                              \
  } while (0)
#else
#define DFTH_TRACE_EMIT(lane, kind, tid, arg) ((void)0)
#define DFTH_TRACE_EMIT_AT(lane, kind, ts, tid, arg) ((void)0)
#define DFTH_TRACE_ALLOC_EVENT(lane, kind, tid, bytes) ((void)0)
#endif
