// Counters registry — the always-cheap half of the observability layer.
//
// One process-global array of relaxed atomic counters, shared by both
// engines, all schedulers, the stack pool and the tracked heap. A trace
// session (obs/trace.h) resets the registry at begin_run() and snapshots it
// at end_run(), so the exported RunStats-superset JSON carries exact
// per-run operation counts even for events the ring buffer dropped or that
// fall under the alloc-event threshold.
//
// Increment through DFTH_COUNT so a -DDFTH_TRACE=OFF build compiles the
// hook to nothing (the registry itself still exists for tests/tools).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace dfth::obs {

enum class Counter : int {
  Forks = 0,
  Joins,
  Dispatches,
  Preempts,       ///< yield / quota / fork-dive switch-outs of runnable threads
  QuotaExhausts,  ///< df_malloc drove a thread's memory quota to zero
  DummySpawns,    ///< δ no-op threads forked before large allocations
  Steals,         ///< WS/DFDeques steals + clustered migrations
  Blocks,
  Wakes,
  Exits,
  ReadyPushes,    ///< scheduler on_ready() calls (all policies)
  ReadyPops,      ///< successful scheduler pick_next() calls
  StacksFresh,
  StacksReused,
  Allocs,
  Frees,
  AllocBytes,
  FreeBytes,
  OomPreempts,      ///< heap exhaustion handled as an AsyncDF-style preempt
  InlineRuns,       ///< children run inline on the parent's stack (degraded spawn)
  SyncTimeouts,     ///< timed waits that expired before a waker claimed them
  FaultsInjected,   ///< resil::FaultInjector failures injected (-DDFTH_FAULTS)
  FaultsRecovered,  ///< injected failures absorbed by a degradation path
  kCount,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

const char* to_string(Counter c);

class CounterRegistry {
 public:
  void inc(Counter c, std::uint64_t n = 1) {
    vals_[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value(Counter c) const {
    return vals_[static_cast<int>(c)].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& v : vals_) v.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> vals_[kNumCounters] = {};
};

/// The process-global registry.
CounterRegistry& counters();

// ---- log-bucketed histograms ------------------------------------------------
//
// Counters answer "how many"; these answer "how long". One power-of-two
// bucket per bit width keeps recording to a single relaxed fetch_add (no
// locks, no allocation) at the cost of ≤2x bucket-boundary error on the
// reported percentiles — the right trade for tail latencies that range over
// six orders of magnitude. A trace session resets the registry at
// begin_run() and snapshots it at end_run(), exactly like the counters.

enum class Hist : int {
  DispatchGapNs = 0,  ///< lane idle time preceding each dispatch
  StealLatencyNs,     ///< ready→stolen wait for WS/DFDeques/clustered steals
  ReadyWaitNs,        ///< ready→dispatched wait at every successful pick
  kCount,
};

inline constexpr int kNumHists = static_cast<int>(Hist::kCount);

const char* to_string(Hist h);

/// Quiesced copy of one histogram; also the view the exporters and the
/// watchdog flight recorder consume.
struct HistSnapshot {
  std::uint64_t buckets[64] = {};  ///< bucket b counts values of bit width b

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (std::uint64_t b : buckets) n += b;
    return n;
  }
  /// Upper bound of bucket b: largest value with that bit width.
  static std::uint64_t bucket_bound(int b) {
    return b >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << b) - 1;
  }
  /// Value at quantile q in [0,1], as the containing bucket's upper bound
  /// (so p50/p99/p999 are conservative to within the 2x bucket width).
  std::uint64_t percentile(double q) const {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (rank >= total) rank = total - 1;
    std::uint64_t seen = 0;
    for (int b = 0; b < 64; ++b) {
      seen += buckets[b];
      if (seen > rank) return bucket_bound(b);
    }
    return bucket_bound(63);
  }
  std::uint64_t max_bound() const {
    for (int b = 63; b >= 0; --b) {
      if (buckets[b]) return bucket_bound(b);
    }
    return 0;
  }
};

class LogHistogram {
 public:
  void record(std::uint64_t v) {
    const int b = std::bit_width(v) > 63 ? 63 : std::bit_width(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }
  HistSnapshot snapshot() const {
    HistSnapshot s;
    for (int b = 0; b < 64; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::atomic<std::uint64_t> buckets_[64] = {};
};

class HistogramRegistry {
 public:
  void record(Hist h, std::uint64_t v) { hists_[static_cast<int>(h)].record(v); }
  HistSnapshot snapshot(Hist h) const {
    return hists_[static_cast<int>(h)].snapshot();
  }
  void reset() {
    for (auto& h : hists_) h.reset();
  }

 private:
  LogHistogram hists_[kNumHists];
};

/// The process-global histogram registry.
HistogramRegistry& histograms();

}  // namespace dfth::obs

#if DFTH_TRACE
#define DFTH_COUNT(c) ::dfth::obs::counters().inc(c)
#define DFTH_COUNT_N(c, n) ::dfth::obs::counters().inc((c), (n))
#define DFTH_HIST(h, v) ::dfth::obs::histograms().record((h), (v))
// Ready→now wait recorder for scheduler pick sites. Guarded: RealEngine
// calls pick_next with now == uint64 max (no virtual clock), and a reused
// Tcb's ready_at may postdate a stale now — record only sane waits.
#define DFTH_HIST_WAIT(h, now_ns, ready_ns)                         \
  do {                                                              \
    const std::uint64_t dfth_hw_now_ = (now_ns);                    \
    const std::uint64_t dfth_hw_rdy_ = (ready_ns);                  \
    if (dfth_hw_now_ != ~std::uint64_t{0} &&                        \
        dfth_hw_now_ >= dfth_hw_rdy_) {                             \
      ::dfth::obs::histograms().record((h),                         \
                                       dfth_hw_now_ - dfth_hw_rdy_); \
    }                                                               \
  } while (0)
#else
#define DFTH_COUNT(c) ((void)0)
#define DFTH_COUNT_N(c, n) ((void)0)
#define DFTH_HIST(h, v) ((void)0)
#define DFTH_HIST_WAIT(h, now_ns, ready_ns) ((void)0)
#endif
