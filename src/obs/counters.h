// Counters registry — the always-cheap half of the observability layer.
//
// One process-global array of relaxed atomic counters, shared by both
// engines, all schedulers, the stack pool and the tracked heap. A trace
// session (obs/trace.h) resets the registry at begin_run() and snapshots it
// at end_run(), so the exported RunStats-superset JSON carries exact
// per-run operation counts even for events the ring buffer dropped or that
// fall under the alloc-event threshold.
//
// Increment through DFTH_COUNT so a -DDFTH_TRACE=OFF build compiles the
// hook to nothing (the registry itself still exists for tests/tools).
#pragma once

#include <atomic>
#include <cstdint>

namespace dfth::obs {

enum class Counter : int {
  Forks = 0,
  Joins,
  Dispatches,
  Preempts,       ///< yield / quota / fork-dive switch-outs of runnable threads
  QuotaExhausts,  ///< df_malloc drove a thread's memory quota to zero
  DummySpawns,    ///< δ no-op threads forked before large allocations
  Steals,         ///< WS/DFDeques steals + clustered migrations
  Blocks,
  Wakes,
  Exits,
  ReadyPushes,    ///< scheduler on_ready() calls (all policies)
  ReadyPops,      ///< successful scheduler pick_next() calls
  StacksFresh,
  StacksReused,
  Allocs,
  Frees,
  AllocBytes,
  FreeBytes,
  OomPreempts,      ///< heap exhaustion handled as an AsyncDF-style preempt
  InlineRuns,       ///< children run inline on the parent's stack (degraded spawn)
  SyncTimeouts,     ///< timed waits that expired before a waker claimed them
  FaultsInjected,   ///< resil::FaultInjector failures injected (-DDFTH_FAULTS)
  FaultsRecovered,  ///< injected failures absorbed by a degradation path
  kCount,
};

inline constexpr int kNumCounters = static_cast<int>(Counter::kCount);

const char* to_string(Counter c);

class CounterRegistry {
 public:
  void inc(Counter c, std::uint64_t n = 1) {
    vals_[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value(Counter c) const {
    return vals_[static_cast<int>(c)].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& v : vals_) v.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> vals_[kNumCounters] = {};
};

/// The process-global registry.
CounterRegistry& counters();

}  // namespace dfth::obs

#if DFTH_TRACE
#define DFTH_COUNT(c) ::dfth::obs::counters().inc(c)
#define DFTH_COUNT_N(c, n) ::dfth::obs::counters().inc((c), (n))
#else
#define DFTH_COUNT(c) ((void)0)
#define DFTH_COUNT_N(c, n) ((void)0)
#endif
