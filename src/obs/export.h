// Exporters for trace sessions and run statistics.
//
//  * write_chrome_trace — Chrome trace_event JSON ("X" slices, one lane per
//    worker/vproc, "s"/"f" flow arrows fork → first dispatch, "i" instants,
//    "C" counter tracks from the time-series samples). Loads directly in
//    Perfetto / chrome://tracing; tools/dfth-trace parses the same file.
//  * write_timeseries_csv — the Figure 1 / Figure 9 curves (live threads,
//    heap and stack footprint, ready-queue depth over time).
//  * write_stats_json — RunStats superset: everything RunStats carries plus
//    the counter registry snapshot, histogram percentiles and trace totals.
//  * write_profile_json — the work/span profiler report: ProfileStats, the
//    Brent what-if sweep (predicted lo/hi vs measured T_p), critical-path
//    attribution and collapsed spawn-site stacks. tools/dfth-prof parses it.
//
// All writers emit one record per line with a fixed key order so the CLI can
// parse them with plain string scanning — no JSON library in the toolchain.
#pragma once

#include <string>
#include <vector>

#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/run_stats.h"

namespace dfth::obs {

/// JSON object literal for one Breakdown, keys from Breakdown::category_name.
std::string to_json(const Breakdown& b);

/// JSON object literal for one ProfileStats (all zeros when !enabled).
std::string to_json(const ProfileStats& p);

/// JSON object literal for one RunStats (embeds breakdown and profile).
std::string to_json(const RunStats& stats);

/// RunStats-superset blob: {"stats": ..., "counters": ..., "trace": ...}.
/// `tr` may be null (stats only). Returns false on I/O failure.
bool write_stats_json(const RunStats& stats, const Tracer* tr,
                      const std::string& path);

/// Chrome trace_event JSON for a finished session. Returns false on I/O
/// failure or if `tr` is null.
bool write_chrome_trace(const Tracer& tr, const RunStats& stats,
                        const std::string& path);

/// Time-series CSV: header "ts_us,live_threads,heap_bytes,stack_bytes,ready".
bool write_timeseries_csv(const Tracer& tr, const std::string& path);

/// One row of the Brent what-if sweep. `measured_us < 0` means "not run".
struct ProfSweepRow {
  int p = 0;
  double predicted_lo_us = 0;
  double predicted_hi_us = 0;
  double measured_us = -1;
};

/// Profiler report blob: {"label", "profile", "elapsed_us", "nprocs",
/// "sweep", "critical_path", "collapsed"}. `prof` may be null (stats-only
/// record, e.g. from a build without an installed session). Returns false
/// on I/O failure.
bool write_profile_json(const std::string& label, const RunStats& stats,
                        const Profiler* prof,
                        const std::vector<ProfSweepRow>& sweep,
                        const std::string& path);

/// Folded collapsed-stack lines ("stack work_ns", one per spawn-site
/// stack) — the format flamegraph.pl and speedscope load directly.
bool write_collapsed_stacks(const Profiler& prof, const std::string& path);

}  // namespace dfth::obs
