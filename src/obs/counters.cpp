#include "obs/counters.h"

namespace dfth::obs {

const char* to_string(Counter c) {
  switch (c) {
    case Counter::Forks: return "forks";
    case Counter::Joins: return "joins";
    case Counter::Dispatches: return "dispatches";
    case Counter::Preempts: return "preempts";
    case Counter::QuotaExhausts: return "quota_exhausts";
    case Counter::DummySpawns: return "dummy_spawns";
    case Counter::Steals: return "steals";
    case Counter::Blocks: return "blocks";
    case Counter::Wakes: return "wakes";
    case Counter::Exits: return "exits";
    case Counter::ReadyPushes: return "ready_pushes";
    case Counter::ReadyPops: return "ready_pops";
    case Counter::StacksFresh: return "stacks_fresh";
    case Counter::StacksReused: return "stacks_reused";
    case Counter::Allocs: return "allocs";
    case Counter::Frees: return "frees";
    case Counter::AllocBytes: return "alloc_bytes";
    case Counter::FreeBytes: return "free_bytes";
    case Counter::OomPreempts: return "oom_preempts";
    case Counter::InlineRuns: return "inline_runs";
    case Counter::SyncTimeouts: return "sync_timeouts";
    case Counter::FaultsInjected: return "faults_injected";
    case Counter::FaultsRecovered: return "faults_recovered";
    case Counter::kCount: break;
  }
  return "?";
}

const char* to_string(Hist h) {
  switch (h) {
    case Hist::DispatchGapNs: return "dispatch_gap_ns";
    case Hist::StealLatencyNs: return "steal_latency_ns";
    case Hist::ReadyWaitNs: return "ready_wait_ns";
    case Hist::kCount: break;
  }
  return "?";
}

CounterRegistry& counters() {
  static CounterRegistry registry;
  return registry;
}

HistogramRegistry& histograms() {
  static HistogramRegistry registry;
  return registry;
}

}  // namespace dfth::obs
