#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace dfth::obs {
namespace {

/// RAII stdio file — exporters may run from atexit-ish paths, keep it simple.
struct File {
  explicit File(const std::string& path) : f(std::fopen(path.c_str(), "w")) {}
  ~File() {
    if (f) std::fclose(f);
  }
  std::FILE* f = nullptr;
};

double us(std::uint64_t ts_ns) { return static_cast<double>(ts_ns) / 1000.0; }

void chrome_event_prefix(std::FILE* f, bool& first) {
  std::fprintf(f, first ? "\n" : ",\n");
  first = false;
}

/// Minimal string escape for spawn-site stacks (file paths may in principle
/// carry quotes or backslashes; nothing else in our output can).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_json(const Breakdown& b) {
  std::string out = "{";
  char buf[64];
  for (int i = 0; i < Breakdown::kNumCategories; ++i) {
    std::snprintf(buf, sizeof buf, "%s\"%s_us\": %.3f", i ? ", " : "",
                  Breakdown::category_name(i), b.category(i));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, ", \"total_us\": %.3f}", b.total_us());
  out += buf;
  return out;
}

std::string to_json(const ProfileStats& p) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"enabled\": %s, \"work_ns\": %" PRIu64
                ", \"span_ns\": %" PRIu64 ", \"burdened_span_ns\": %" PRIu64
                ", \"overhead_ns\": %" PRIu64 ", \"fibers\": %" PRIu64
                ", \"parallelism\": %.3f}",
                p.enabled ? "true" : "false", p.work_ns, p.span_ns,
                p.burdened_span_ns, p.overhead_ns, p.fibers, p.parallelism());
  return buf;
}

std::string to_json(const RunStats& s) {
  char buf[1536];
  std::snprintf(
      buf, sizeof buf,
      "{\"engine\": \"%s\", \"scheduler\": \"%s\", \"nprocs\": %d, "
      "\"threads_created\": %" PRIu64 ", \"dummy_threads\": %" PRIu64
      ", \"max_live_threads\": %" PRId64 ", \"dispatches\": %" PRIu64
      ", \"quota_preemptions\": %" PRIu64 ", \"steals\": %" PRIu64
      ", \"oom_preemptions\": %" PRIu64 ", \"inline_runs\": %" PRIu64
      ", \"sync_timeouts\": %" PRIu64 ", \"faults_injected\": %" PRIu64
      ", \"faults_recovered\": %" PRIu64
      ", \"heap_peak\": %" PRId64 ", \"stack_peak\": %" PRId64
      ", \"stacks_fresh\": %" PRIu64 ", \"stacks_reused\": %" PRIu64
      ", \"stack_high_water\": %" PRId64
      ", \"elapsed_us\": %.3f, \"cache_hits\": %" PRIu64
      ", \"cache_misses\": %" PRIu64 ", \"breakdown\": ",
      to_string(s.engine), to_string(s.sched), s.nprocs, s.threads_created,
      s.dummy_threads, s.max_live_threads, s.dispatches, s.quota_preemptions,
      s.steals, s.oom_preemptions, s.inline_runs, s.sync_timeouts,
      s.faults_injected, s.faults_recovered, s.heap_peak, s.stack_peak,
      s.stacks_fresh, s.stacks_reused, s.stack_high_water, s.elapsed_us,
      s.cache_hits, s.cache_misses);
  return std::string(buf) + to_json(s.breakdown) +
         ", \"profile\": " + to_json(s.profile) + "}";
}

bool write_stats_json(const RunStats& stats, const Tracer* tr,
                      const std::string& path) {
  File out(path);
  if (!out.f) return false;
  std::fprintf(out.f, "{\n\"stats\": %s", to_json(stats).c_str());
  if (tr) {
    std::fprintf(out.f, ",\n\"counters\": {");
    for (int c = 0; c < kNumCounters; ++c) {
      std::fprintf(out.f, "%s\"%s\": %" PRIu64, c ? ", " : "",
                   to_string(static_cast<Counter>(c)),
                   tr->counter(static_cast<Counter>(c)));
    }
    std::fprintf(out.f, "},\n\"histograms\": {");
    for (int h = 0; h < kNumHists; ++h) {
      const auto hist = static_cast<Hist>(h);
      const HistSnapshot& s = tr->hist(hist);
      std::fprintf(out.f,
                   "%s\"%s\": {\"count\": %" PRIu64 ", \"p50_ns\": %" PRIu64
                   ", \"p99_ns\": %" PRIu64 ", \"p999_ns\": %" PRIu64
                   ", \"max_ns\": %" PRIu64 "}",
                   h ? ", " : "", to_string(hist), s.count(),
                   s.percentile(0.50), s.percentile(0.99), s.percentile(0.999),
                   s.max_bound());
    }
    std::fprintf(out.f,
                 "},\n\"trace\": {\"lanes\": %d, \"events\": %zu, "
                 "\"dropped\": %" PRIu64 ", \"samples\": %zu}",
                 tr->lanes(), tr->event_count(), tr->dropped(),
                 tr->samples().size());
  }
  std::fprintf(out.f, "\n}\n");
  return true;
}

bool write_chrome_trace(const Tracer& tr, const RunStats& stats,
                        const std::string& path) {
  File out(path);
  if (!out.f) return false;
  std::FILE* f = out.f;
  bool first = true;
  std::fprintf(f, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");

  // Ring-overflow marker: how many events the lanes dropped. Viewers ignore
  // the unknown metadata name; dfth-trace surfaces it in its summary so an
  // overflowed export is never mistaken for a complete one.
  chrome_event_prefix(f, first);
  std::fprintf(f,
               "{\"name\": \"dfth_dropped\", \"ph\": \"M\", \"pid\": 0, "
               "\"tid\": 0, \"args\": {\"dropped\": %" PRIu64 "}}",
               tr.dropped());

  // Lane metadata: one Chrome "thread" per worker/vproc.
  for (int lane = 0; lane < tr.lanes(); ++lane) {
    chrome_event_prefix(f, first);
    const bool external = lane == tr.lanes() - 1 && lane == stats.nprocs;
    std::fprintf(f,
                 "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
                 "\"tid\": %d, \"args\": {\"name\": \"%s %d\"}}",
                 lane, external ? "external" : "worker", lane);
  }

  // First dispatch per thread — the flow-arrow targets.
  struct FirstDispatch {
    std::uint64_t ts_ns;
    int lane;
  };
  std::unordered_map<std::uint64_t, FirstDispatch> first_dispatch;
  for (int lane = 0; lane < tr.lanes(); ++lane) {
    for (const TraceEvent& ev : tr.lane_events(lane)) {
      if (ev.kind == EvKind::Dispatch && !first_dispatch.count(ev.tid)) {
        first_dispatch[ev.tid] = {ev.ts_ns, lane};
      }
    }
  }

  const std::uint64_t run_end_ns =
      static_cast<std::uint64_t>(stats.elapsed_us * 1000.0);
  std::uint64_t next_flow_id = 1;

  for (int lane = 0; lane < tr.lanes(); ++lane) {
    const auto events = tr.lane_events(lane);
    // Open dispatch slice on this lane, if any.
    bool open = false;
    std::uint64_t open_tid = 0, open_ts = 0;
    std::uint64_t lane_end = run_end_ns;
    if (!events.empty()) lane_end = std::max(lane_end, events.back().ts_ns);

    auto close_slice = [&](std::uint64_t end_ns) {
      chrome_event_prefix(f, first);
      std::fprintf(f,
                   "{\"name\": \"T%" PRIu64
                   "\", \"ph\": \"X\", \"pid\": 0, \"tid\": %d, "
                   "\"ts\": %.3f, \"dur\": %.3f, \"args\": {\"thread\": %" PRIu64
                   "}}",
                   open_tid, lane, us(open_ts),
                   us(end_ns >= open_ts ? end_ns - open_ts : 0), open_tid);
      open = false;
    };

    for (const TraceEvent& ev : events) {
      switch (ev.kind) {
        case EvKind::Dispatch:
          if (open) close_slice(ev.ts_ns);
          open = true;
          open_tid = ev.tid;
          open_ts = ev.ts_ns;
          break;
        case EvKind::Preempt:
        case EvKind::Block:
        case EvKind::Exit:
          if (open && ev.tid == open_tid) close_slice(ev.ts_ns);
          break;
        case EvKind::Fork:
        case EvKind::DummySpawn: {
          // Flow arrow fork → child's first dispatch.
          auto it = first_dispatch.find(ev.arg);
          if (it != first_dispatch.end() && it->second.ts_ns >= ev.ts_ns) {
            const std::uint64_t id = next_flow_id++;
            chrome_event_prefix(f, first);
            std::fprintf(f,
                         "{\"name\": \"fork\", \"cat\": \"fork\", \"ph\": "
                         "\"s\", \"id\": %" PRIu64
                         ", \"pid\": 0, \"tid\": %d, \"ts\": %.3f}",
                         id, lane, us(ev.ts_ns));
            chrome_event_prefix(f, first);
            std::fprintf(f,
                         "{\"name\": \"fork\", \"cat\": \"fork\", \"ph\": "
                         "\"f\", \"bp\": \"e\", \"id\": %" PRIu64
                         ", \"pid\": 0, \"tid\": %d, \"ts\": %.3f}",
                         id, it->second.lane, us(it->second.ts_ns));
          }
          break;
        }
        default:
          break;
      }
      // Instants for the notable point events (skip the slice machinery ones).
      switch (ev.kind) {
        case EvKind::QuotaExhaust:
        case EvKind::Steal:
        case EvKind::StackFresh:
        case EvKind::StackReuse:
        case EvKind::Alloc:
        case EvKind::Free:
          chrome_event_prefix(f, first);
          std::fprintf(f,
                       "{\"name\": \"%s\", \"ph\": \"i\", \"s\": \"t\", "
                       "\"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"args\": "
                       "{\"thread\": %" PRIu64 ", \"arg\": %" PRIu64 "}}",
                       to_string(ev.kind), lane, us(ev.ts_ns), ev.tid, ev.arg);
          break;
        default:
          break;
      }
    }
    if (open) close_slice(lane_end);
  }

  // Counter tracks from the time-series samples (Fig 1 / Fig 9 curves).
  for (const Sample& s : tr.samples()) {
    chrome_event_prefix(f, first);
    std::fprintf(f,
                 "{\"name\": \"threads\", \"ph\": \"C\", \"pid\": 0, \"tid\": "
                 "0, \"ts\": %.3f, \"args\": {\"live\": %" PRId64
                 ", \"ready\": %" PRId64 "}}",
                 us(s.ts_ns), s.live_threads, s.ready);
    chrome_event_prefix(f, first);
    std::fprintf(f,
                 "{\"name\": \"footprint\", \"ph\": \"C\", \"pid\": 0, "
                 "\"tid\": 0, \"ts\": %.3f, \"args\": {\"heap\": %" PRId64
                 ", \"stack\": %" PRId64 "}}",
                 us(s.ts_ns), s.heap_bytes, s.stack_bytes);
  }

  std::fprintf(f, "\n]}\n");
  return true;
}

bool write_profile_json(const std::string& label, const RunStats& stats,
                        const Profiler* prof,
                        const std::vector<ProfSweepRow>& sweep,
                        const std::string& path) {
  File out(path);
  if (!out.f) return false;
  std::FILE* f = out.f;
  std::fprintf(f, "{\n\"label\": \"%s\",\n\"profile\": %s,\n",
               json_escape(label).c_str(),
               to_json(stats.profile).c_str());
  std::fprintf(f, "\"elapsed_us\": %.3f,\n\"nprocs\": %d,\n",
               prof ? prof->elapsed_us() : stats.elapsed_us,
               prof ? prof->nprocs() : stats.nprocs);
  std::fprintf(f, "\"sweep\": [");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const ProfSweepRow& r = sweep[i];
    std::fprintf(f,
                 "%s\n{\"p\": %d, \"predicted_lo_us\": %.3f, "
                 "\"predicted_hi_us\": %.3f, \"measured_us\": %.3f}",
                 i ? "," : "", r.p, r.predicted_lo_us, r.predicted_hi_us,
                 r.measured_us);
  }
  std::fprintf(f, "\n],\n\"critical_path\": [");
  if (prof) {
    const std::vector<CritSegment> crit = prof->critical_path();
    for (std::size_t i = 0; i < crit.size(); ++i) {
      std::fprintf(f, "%s\n{\"stack\": \"%s\", \"ns\": %" PRIu64 "}",
                   i ? "," : "", json_escape(crit[i].stack).c_str(),
                   crit[i].ns);
    }
  }
  std::fprintf(f, "\n],\n\"collapsed\": [");
  if (prof) {
    const std::vector<CollapsedLine> lines = prof->collapsed();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::fprintf(f, "%s\n{\"stack\": \"%s\", \"work_ns\": %" PRIu64 "}",
                   i ? "," : "", json_escape(lines[i].stack).c_str(),
                   lines[i].work_ns);
    }
  }
  std::fprintf(f, "\n]\n}\n");
  return true;
}

bool write_collapsed_stacks(const Profiler& prof, const std::string& path) {
  File out(path);
  if (!out.f) return false;
  for (const CollapsedLine& line : prof.collapsed()) {
    std::fprintf(out.f, "%s %" PRIu64 "\n", line.stack.c_str(), line.work_ns);
  }
  return true;
}

bool write_timeseries_csv(const Tracer& tr, const std::string& path) {
  File out(path);
  if (!out.f) return false;
  std::fprintf(out.f, "ts_us,live_threads,heap_bytes,stack_bytes,ready\n");
  for (const Sample& s : tr.samples()) {
    std::fprintf(out.f, "%.3f,%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRId64 "\n",
                 us(s.ts_ns), s.live_threads, s.heap_bytes, s.stack_bytes,
                 s.ready);
  }
  return true;
}

}  // namespace dfth::obs
