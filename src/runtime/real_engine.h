// RealEngine: user-level threads multiplexed over kernel-thread workers —
// the two-level Solaris model (unbound Pthreads over LWPs) built for real.
//
// nprocs kernel threads ("LWPs") each run a dispatch loop; unbound fibers
// are handed out by the pluggable Scheduler under one global mutex (the
// same serialized-scheduler structure as the paper's library, §6). Bound
// threads (Attr::bound) get a dedicated kernel thread and bypass the
// scheduler entirely, exactly like bound Solaris threads.
//
// This engine provides true concurrency for the synchronization stress
// tests and real microsecond costs for the Figure 3 microbenchmark. On the
// single-CPU reproduction host it cannot demonstrate speedup — that is
// SimEngine's job — but oversubscribed workers still exercise every race.
//
// Blocking protocol (the classic save-before-publish problem): a fiber that
// blocks or is preempted never publishes itself as resumable directly.
// It records a post-switch action and switches to the worker's context; the
// worker — running strictly after the fiber's state is saved — performs the
// action (release a spinlock, requeue the fiber, free an exited fiber's
// stack). A fiber can therefore never be resumed by another worker while
// its context is half-saved.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/api.h"
#include "runtime/engine.h"

namespace dfth {

class RealEngine final : public Engine {
 public:
  explicit RealEngine(const RuntimeOptions& opts);
  ~RealEngine() override;

  EngineKind kind() const override { return EngineKind::Real; }
  RunStats run(const std::function<void()>& main_fn) override;

  Tcb* current() override;
  Tcb* spawn(std::function<void*()> fn, const Attr& attr, bool is_dummy,
             const char* site_file, int site_line) override;
  void* join(Tcb* t) override;
  void detach(Tcb* t) override;
  void yield() override;
  void block_current(SpinLock* guard) override;
  void block_current_timed(SpinLock* guard, WaitList* list,
                           std::uint64_t timeout_ns) override;
  void wake(Tcb* t) override;
  void charge_sync_op() override {}
  std::uint64_t now_ns() const override;
  void on_alloc(std::size_t bytes, std::int64_t fresh_bytes) override;
  void on_free(std::size_t bytes) override;
  bool uses_alloc_quota() const override;
  /// Effective K: starts at opts.mem_quota, shrunk by OOM recovery.
  std::size_t quota_bytes() const override {
    return eff_quota_.load(std::memory_order_relaxed);
  }
  bool on_alloc_failed(std::size_t bytes, int attempt) override;
  void add_work(std::uint64_t ops) override { (void)ops; }
  void touch(const std::uint32_t* block_ids, std::size_t count) override {
    (void)block_ids;
    (void)count;
  }

 private:
  enum class Post : std::uint8_t {
    None,
    ReleaseGuard,   ///< unlock post_guard (fiber blocked on a wait list)
    Requeue,        ///< make post_fiber Ready again (yield / quota preempt)
    RunNext,        ///< requeue post_fiber, then run post_next directly
    ExitCleanup,    ///< post_fiber exited: release its stack
  };

  struct Worker {
    int id = 0;
    Context ctx;             ///< dispatch-loop context
    Tcb* current = nullptr;  ///< fiber this worker is executing
    Post post = Post::None;
    Tcb* post_fiber = nullptr;
    Tcb* post_next = nullptr;
    SpinLock* post_guard = nullptr;
    /// Steady-clock start of the slice the worker is currently running; the
    /// work/span profiler charges `now - slice_start_ns` when the fiber
    /// switches back (and uses it as the uncharged offset on edges taken
    /// from inside the slice). Maintained only while a profiler is installed.
    std::uint64_t slice_start_ns = 0;
    /// Steady-clock instant the worker last finished a slice; the next
    /// dispatch reads it as its dispatch-gap measurement.
    std::uint64_t idle_since_ns = 0;
    std::thread thread;
  };

  /// A timed wait's timer entry, fired by the supervisor thread. Deadlines
  /// are steady-clock nanoseconds (steady_now_ns).
  struct RtSleeper {
    std::uint64_t deadline_ns = 0;
    Tcb* t = nullptr;
    SpinLock* guard = nullptr;
    WaitList* list = nullptr;
  };

  static void fiber_entry(void* arg);
  static Worker* this_worker();

  Tcb* make_tcb(std::function<void*()> fn, const Attr& attr, bool is_dummy);
  /// Degraded spawn: no stack/context for the child — run it to completion
  /// on the caller's stack (the serial depth-first order). Never registered
  /// with the scheduler.
  Tcb* run_inline(Tcb* child);
  void worker_loop(Worker& w);
  void run_fiber(Worker& w, Tcb* t);
  void handle_post(Worker& w);
  void enqueue_ready(Tcb* t, int proc_hint);
  /// Deadline check folded into a dispatch: fires `t`'s cancel token when
  /// its deadline passed on the steady clock, and returns `base` (the
  /// kDispatchForkDive flag or 0) OR'd with kDispatchDeadline when it fired.
  /// In a pinned replay the recorded Dispatch flags win over the live clock
  /// — wall time drifts between runs, and the flag is the one place the
  /// expire-or-not race is logged. Called with mu_ held, immediately before
  /// the Dispatch commit.
  std::uint64_t dispatch_cancel_flags(Tcb* t, int lane, std::uint64_t base);
  void start_bound_thread(Tcb* t);
  void finish_thread(Tcb* t);  ///< shared exit bookkeeping (fiber + bound)

  /// Timer + stall-watchdog thread: fires due RtSleepers and aborts with a
  /// flight-recorder dump when no dispatch progress happens for longer than
  /// WatchdogConfig::stall_deadline_ms.
  void supervisor_loop();
  /// Fires every due sleeper. Called with `lk` (sup_mu_) held; drops it
  /// around the claim-and-wake of each entry.
  void fire_due_sleepers(std::unique_lock<std::mutex>& lk);
#if DFTH_REPLAY
  /// Replay-pinned variant: fires a sleeper exactly when the schedule log's
  /// next ordered decision is the timer's TimeoutClaim for it — wall-clock
  /// deadlines are ignored, the recorded timer-vs-waker race outcome is
  /// what's honored. Free-runs via fire_due_sleepers once the log ends.
  void replay_fire_sleepers(std::unique_lock<std::mutex>& lk);
#endif
  /// Removes t's timer entry, waiting out an in-flight fire for t so a
  /// stale timer can never claim t's *next* wait.
  void cancel_sleeper(Tcb* t);
  /// Best-effort crash dump through resil::dump_flight_recorder. When
  /// have_lock is false, mu_ is try-locked (bounded) — a wedged worker
  /// holding it must not block the dump forever.
  void dump_flight(const char* reason, bool have_lock);

  RuntimeOptions opts_;
  std::unique_ptr<Scheduler> sched_;

  std::mutex mu_;                 ///< the global scheduler lock
  std::condition_variable cv_;    ///< workers: "ready work exists" / shutdown
  std::condition_variable done_cv_;  ///< host thread in run(): completion.
                                     ///< Separate from cv_ so a notify_one
                                     ///< meant for a worker can never be
                                     ///< swallowed by the waiting host.
  bool done_ = false;
  std::int64_t live_ = 0;
  std::int64_t bound_live_ = 0;
  int idle_workers_ = 0;
  // Atomic: make_tcb runs in the spawning fiber before it takes mu_, so
  // concurrent spawns on different workers allocate ids in parallel.
  std::atomic<std::uint64_t> next_tid_{1};

  std::vector<Worker> workers_;
  std::vector<Tcb*> all_tcbs_;    ///< guarded by mu_
  std::vector<std::thread> bound_threads_;  ///< guarded by mu_

  /// Effective allocation quota K; OOM recovery halves it (atomic: read on
  /// every dispatch without mu_).
  std::atomic<std::size_t> eff_quota_{0};

  // -- supervisor (timed waits + stall watchdog) ----------------------------
  std::mutex sup_mu_;                 ///< guards sleepers_, firing_, sup_stop_
  std::condition_variable sup_cv_;
  std::vector<RtSleeper> sleepers_;
  Tcb* firing_ = nullptr;             ///< sleeper whose fire is in flight
  bool sup_stop_ = false;
  std::thread supervisor_;
  /// Monotonic dispatch/wake/exit counter; the watchdog trips when it stops
  /// moving while live work remains.
  std::atomic<std::uint64_t> progress_{0};

  RunStats stats_;  ///< counter fields guarded by mu_
};

}  // namespace dfth
