#include "runtime/sync.h"

#include "resil/faults.h"
#include "runtime/engine.h"
#include "util/check.h"

// Lockset hooks (analyze/lock_graph.h): every acquire/release of a Mutex or
// RwLock — write *and* read mode, since a shared hold blocks the next writer
// under the writer-preferring discipline — is reported to the global
// lock-order graph in DFTH_VALIDATE builds; release builds compile the hooks
// away entirely.
#if DFTH_VALIDATE
#include "analyze/lock_graph.h"
#define DFTH_LOCK_ACQUIRED(t, l) ::dfth::analyze::LockGraph::instance().on_acquire((t), (l))
#define DFTH_LOCK_ACQUIRED_SHARED(t, l) \
  ::dfth::analyze::LockGraph::instance().on_acquire_shared((t), (l))
#define DFTH_LOCK_RELEASED(t, l) ::dfth::analyze::LockGraph::instance().on_release((t), (l))
#else
#define DFTH_LOCK_ACQUIRED(t, l) ((void)0)
#define DFTH_LOCK_ACQUIRED_SHARED(t, l) ((void)0)
#define DFTH_LOCK_RELEASED(t, l) ((void)0)
#endif

// Happens-before hooks (analyze/race_hooks.h, -DDFTH_RACE builds): every
// primitive publishes release→acquire edges to the race detector. See the
// placement contract in race_hooks.h — release-side and fast-path
// acquire-side hooks run under the object's guard_.
#include "analyze/race_hooks.h"

// Record/replay hooks (replay/hooks.h, -DDFTH_REPLAY builds): every guard_
// critical section is one ordered decision. The SYNC_GATE runs before
// guard_.lock() (no instrumented lock held), the SYNC_COMMIT runs inside the
// section, immediately after the acquire — so the log captures exactly the
// order in which fibers won each object's guard, which is the only
// nondeterminism these primitives have (everything else is a deterministic
// function of that order plus the wait-list FIFO discipline).
#include "replay/hooks.h"

#if DFTH_REPLAY
#define DFTH_SYNC_SECTION(op)                             \
  DFTH_REPLAY_SYNC_GATE();                                \
  guard_.lock();                                          \
  DFTH_REPLAY_SYNC_COMMIT(this, ::dfth::replay::SyncOp::op)
#else
#define DFTH_SYNC_SECTION(op) guard_.lock()
#endif

namespace dfth {
namespace {

Engine* checked_engine() {
  Engine* e = engine();
  DFTH_CHECK_MSG(e, "synchronization primitive used outside dfth::run");
  return e;
}

}  // namespace

// Destructors only unbind the object from the record/replay schedule log:
// arena-per-phase apps destroy a whole tree of primitives and rebuild at the
// recycled addresses, and a stale address→id binding would name the new
// object with its corpse's id (record and replay recycle memory in different
// orders, so the conflation diverges). Destroying a primitive with waiters
// is still UB, exactly as for pthreads.
Mutex::~Mutex() { DFTH_REPLAY_SYNC_DESTROY(this); }
CondVar::~CondVar() { DFTH_REPLAY_SYNC_DESTROY(this); }
Semaphore::~Semaphore() { DFTH_REPLAY_SYNC_DESTROY(this); }
Barrier::~Barrier() { DFTH_REPLAY_SYNC_DESTROY(this); }
RwLock::~RwLock() { DFTH_REPLAY_SYNC_DESTROY(this); }

// -- Mutex --------------------------------------------------------------------

void Mutex::lock() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(MutexLock);
  Tcb* cur = e->current();
  if (owner_ == nullptr) {
    owner_ = cur;
    DFTH_RACE_ACQUIRE(cur, this);
    guard_.unlock();
    DFTH_LOCK_ACQUIRED(cur, this);
    return;
  }
  DFTH_CHECK_MSG(owner_ != cur, "recursive Mutex::lock");
  waiters_.push(cur);
  cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  e->block_current(&guard_);
  // unlock() handed ownership to us before waking (and recorded its release
  // clock under the guard, so this acquire needs no guard).
  DFTH_RACE_ACQUIRE(cur, this);
  DFTH_LOCK_ACQUIRED(cur, this);
}

bool Mutex::try_lock_for(std::uint64_t timeout_ns) {
  Engine* e = checked_engine();
  e->charge_sync_op();
  if (DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kSyncTimeout)) {
    // Injected immediate timeout; the caller's timeout path absorbs it.
    DFTH_FAULT_RECOVERED(resil::FaultSite::kSyncTimeout);
    return false;
  }
  DFTH_SYNC_SECTION(MutexTryLockFor);
  Tcb* cur = e->current();
  if (owner_ == nullptr) {
    owner_ = cur;
    DFTH_RACE_ACQUIRE(cur, this);
    guard_.unlock();
    DFTH_LOCK_ACQUIRED(cur, this);
    return true;
  }
  DFTH_CHECK_MSG(owner_ != cur, "recursive Mutex::try_lock_for");
  waiters_.push(cur);
  cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  e->block_current_timed(&guard_, &waiters_, timeout_ns);
  const bool timed_out = cur->timed_out;
  cur->timed_out = false;
  if (timed_out) return false;
  // unlock() handed ownership to us before waking; the timer lost the claim
  // (we were already off the wait list), so only this path takes the
  // release→acquire edge — the race detector stays schedule-insensitive.
  DFTH_RACE_ACQUIRE(cur, this);
  DFTH_LOCK_ACQUIRED(cur, this);
  return true;
}

bool Mutex::try_lock() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(MutexTryLock);
  if (owner_ != nullptr) {
    guard_.unlock();
    return false;
  }
  owner_ = e->current();
  DFTH_RACE_ACQUIRE(owner_, this);
  guard_.unlock();
  DFTH_LOCK_ACQUIRED(e->current(), this);
  return true;
}

void Mutex::unlock() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(MutexUnlock);
  DFTH_CHECK_MSG(owner_ == e->current(), "Mutex::unlock by non-owner");
  DFTH_RACE_RELEASE(e->current(), this);
  Tcb* next = waiters_.pop();
  owner_ = next;  // direct handoff keeps the queue FIFO-fair
  guard_.unlock();
  DFTH_LOCK_RELEASED(e->current(), this);
  if (next) e->wake(next);
}

// -- CondVar --------------------------------------------------------------------

void CondVar::wait(Mutex& m) {
  Engine* e = checked_engine();
  e->charge_sync_op();
  Tcb* cur = e->current();
  DFTH_CHECK_MSG(m.held_by(cur), "CondVar::wait caller does not hold the mutex");
  // The m.unlock() below commits its own nested MutexUnlock while this
  // CvWait section still holds guard_ — safe: no other actor's event on this
  // CondVar can sit between the two in the log (it would have needed guard_).
  DFTH_SYNC_SECTION(CvWait);
  waiters_.push(cur);
  cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  // Release the user mutex only after we are on the wait list (we still hold
  // guard_, so a signaler cannot pop-and-wake us before we finish blocking —
  // no lost-wakeup window).
  m.unlock();
  e->block_current(&guard_);
  // Re-fetch the engine: we may resume on another kernel thread.
  engine()->current();  // (no-op read; documents the refetch discipline)
  // signal()/broadcast() recorded the signaler's clock before waking us.
  DFTH_RACE_ACQUIRE(cur, this);
  m.lock();
}

bool CondVar::timed_wait(Mutex& m, std::uint64_t timeout_ns) {
  Engine* e = checked_engine();
  e->charge_sync_op();
  Tcb* cur = e->current();
  DFTH_CHECK_MSG(m.held_by(cur),
                 "CondVar::timed_wait caller does not hold the mutex");
  if (DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kSyncTimeout)) {
    // Injected immediate timeout: the mutex is never released, exactly as
    // if the deadline expired before the wait began.
    DFTH_FAULT_RECOVERED(resil::FaultSite::kSyncTimeout);
    return false;
  }
  DFTH_SYNC_SECTION(CvTimedWait);
  waiters_.push(cur);
  cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  m.unlock();
  e->block_current_timed(&guard_, &waiters_, timeout_ns);
  const bool timed_out = cur->timed_out;
  cur->timed_out = false;
  // Only a genuine signal carries the signaler's release→acquire edge; a
  // timeout synchronizes with nobody.
  if (!timed_out) DFTH_RACE_ACQUIRE(cur, this);
  m.lock();
  return !timed_out;
}

void CondVar::signal() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(CvSignal);
  DFTH_RACE_RELEASE(e->current(), this);
  Tcb* t = waiters_.pop();
  guard_.unlock();
  if (t) e->wake(t);
}

void CondVar::broadcast() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(CvBroadcast);
  DFTH_RACE_RELEASE(e->current(), this);
  WaitList woken;
  while (Tcb* t = waiters_.pop()) woken.push(t);
  guard_.unlock();
  while (Tcb* t = woken.pop()) e->wake(t);
}

// -- Semaphore ----------------------------------------------------------------

void Semaphore::acquire() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(SemAcquire);
  Tcb* cur = e->current();
  if (count_ > 0) {
    --count_;
    DFTH_RACE_ACQUIRE(cur, this);
    guard_.unlock();
    return;
  }
  waiters_.push(cur);
  cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  e->block_current(&guard_);
  // release() transferred one unit directly to us (V→P edge recorded under
  // the guard before the wake).
  DFTH_RACE_ACQUIRE(cur, this);
}

bool Semaphore::try_acquire() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(SemTryAcquire);
  const bool ok = count_ > 0;
  if (ok) {
    --count_;
    DFTH_RACE_ACQUIRE(e->current(), this);
  }
  guard_.unlock();
  return ok;
}

bool Semaphore::try_acquire_for(std::uint64_t timeout_ns) {
  Engine* e = checked_engine();
  e->charge_sync_op();
  if (DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kSyncTimeout)) {
    DFTH_FAULT_RECOVERED(resil::FaultSite::kSyncTimeout);
    return false;
  }
  DFTH_SYNC_SECTION(SemTryAcquireFor);
  Tcb* cur = e->current();
  if (count_ > 0) {
    --count_;
    DFTH_RACE_ACQUIRE(cur, this);
    guard_.unlock();
    return true;
  }
  waiters_.push(cur);
  cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  e->block_current_timed(&guard_, &waiters_, timeout_ns);
  const bool timed_out = cur->timed_out;
  cur->timed_out = false;
  if (timed_out) return false;
  // release() transferred one unit directly to us (V→P edge).
  DFTH_RACE_ACQUIRE(cur, this);
  return true;
}

void Semaphore::release() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(SemRelease);
  DFTH_RACE_RELEASE(e->current(), this);
  Tcb* t = waiters_.pop();
  if (!t) ++count_;
  guard_.unlock();
  if (t) e->wake(t);
}

// -- Barrier --------------------------------------------------------------------

void Barrier::arrive_and_wait() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(BarrierArrive);
  Tcb* cur = e->current();
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (++arrived_ == parties_) {
    arrived_ = 0;
    generation_.fetch_add(1, std::memory_order_release);
    // Every earlier arrival recorded its clock under the guard; the `last`
    // arrival seals generation `gen` as an all-to-all edge and inherits it
    // immediately (it never blocks).
    DFTH_RACE_BARRIER_ARRIVE(cur, this, gen, /*last=*/true);
    DFTH_RACE_BARRIER_LEAVE(cur, this, gen);
    WaitList woken;
    while (Tcb* t = waiters_.pop()) woken.push(t);
    guard_.unlock();
    while (Tcb* t = woken.pop()) e->wake(t);
    return;
  }
  DFTH_RACE_BARRIER_ARRIVE(cur, this, gen, /*last=*/false);
  waiters_.push(cur);
  cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  e->block_current(&guard_);
  DFTH_RACE_BARRIER_LEAVE(cur, this, gen);
}

// -- RwLock ----------------------------------------------------------------------

void RwLock::rdlock() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(RwRdLock);
  Tcb* cur = e->current();
  if (!writer_ && waiting_writers_ == 0) {
    ++readers_;
    DFTH_RACE_RD_ACQUIRE(cur, this);
    guard_.unlock();
    DFTH_LOCK_ACQUIRED_SHARED(cur, this);
    return;
  }
  read_waiters_.push(cur);
  cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  e->block_current(&guard_);
  // The releasing thread counted us into readers_ before waking us.
  DFTH_RACE_RD_ACQUIRE(cur, this);
  DFTH_LOCK_ACQUIRED_SHARED(cur, this);
}

bool RwLock::try_rdlock() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(RwTryRdLock);
  const bool ok = !writer_ && waiting_writers_ == 0;
  if (ok) {
    ++readers_;
    DFTH_RACE_RD_ACQUIRE(e->current(), this);
  }
  guard_.unlock();
  if (ok) DFTH_LOCK_ACQUIRED_SHARED(e->current(), this);
  return ok;
}

void RwLock::rdunlock() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(RwRdUnlock);
  DFTH_CHECK_MSG(readers_ > 0, "rdunlock without rdlock");
  --readers_;
  DFTH_RACE_RD_RELEASE(e->current(), this);
  DFTH_LOCK_RELEASED(e->current(), this);
  if (readers_ == 0 && !writer_) {
    release_to_next();
    return;  // release_to_next unlocked the guard
  }
  guard_.unlock();
}

void RwLock::wrlock() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(RwWrLock);
  Tcb* cur = e->current();
  if (!writer_ && readers_ == 0) {
    writer_ = true;
    DFTH_RACE_WR_ACQUIRE(cur, this);
    guard_.unlock();
    DFTH_LOCK_ACQUIRED(cur, this);
    return;
  }
  ++waiting_writers_;
  write_waiters_.push(cur);
  cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
  e->block_current(&guard_);
  // The releasing thread set writer_ = true on our behalf.
  DFTH_RACE_WR_ACQUIRE(cur, this);
  DFTH_LOCK_ACQUIRED(cur, this);
}

bool RwLock::try_wrlock() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(RwTryWrLock);
  const bool ok = !writer_ && readers_ == 0;
  if (ok) {
    writer_ = true;
    DFTH_RACE_WR_ACQUIRE(e->current(), this);
  }
  guard_.unlock();
  if (ok) DFTH_LOCK_ACQUIRED(e->current(), this);
  return ok;
}

void RwLock::wrunlock() {
  Engine* e = checked_engine();
  e->charge_sync_op();
  DFTH_SYNC_SECTION(RwWrUnlock);
  DFTH_CHECK_MSG(writer_, "wrunlock without wrlock");
  writer_ = false;
  DFTH_RACE_RELEASE(e->current(), this);
  DFTH_LOCK_RELEASED(e->current(), this);
  release_to_next();
}

void RwLock::release_to_next() {
  Engine* e = engine();
  // Prefer a waiting writer (writer-preferring discipline)...
  if (Tcb* w = write_waiters_.pop()) {
    --waiting_writers_;
    writer_ = true;
    guard_.unlock();
    e->wake(w);
    return;
  }
  // ...otherwise admit every waiting reader at once.
  WaitList woken;
  while (Tcb* r = read_waiters_.pop()) {
    ++readers_;
    woken.push(r);
  }
  guard_.unlock();
  while (Tcb* r = woken.pop()) e->wake(r);
}

// -- Once ------------------------------------------------------------------------

void Once::call(const std::function<void()>& fn) {
#if DFTH_REPLAY
  // Under an active record/replay session the lock-free fast path is
  // disabled: whether a caller sees done_ without taking m_ is a data race
  // the log cannot capture. Forcing everyone through m_ makes the whole
  // operation a function of the mutex-acquisition order, which the m_ hooks
  // already record. Same policy on record and replay, so the event streams
  // line up.
  if (::dfth::replay::active() == nullptr)
#endif
  if (done_.load(std::memory_order_acquire)) {
#if DFTH_RACE
    // Fast-path observers synchronize with the runner through done_ alone
    // (no mutex), so the run→observe edge must be inherited here too. The
    // release clock is recorded before the store that made done_ visible.
    if (Engine* e = engine()) {
      if (Tcb* cur = e->current()) DFTH_RACE_ACQUIRE(cur, this);
    }
#endif
    return;
  }
  LockGuard lock(m_);
  if (!done_.load(std::memory_order_relaxed)) {
    fn();
    DFTH_RACE_RELEASE(engine()->current(), this);
    done_.store(true, std::memory_order_release);
  }
  // Slow-path observers inherit the runner's clock through m_'s own
  // release→acquire edge.
}

}  // namespace dfth
