// Blocking synchronization primitives: the Pthreads functionality the paper
// stresses its scheduler must preserve ("any existing Pthreads program can
// be executed using our space-efficient scheduler, including programs with
// blocking locks and condition variables" — unlike Cilk/Filaments-style
// systems that only support fork/join).
//
// All primitives follow one protocol, engine-agnostic:
//   1. take the object's spinlock guard,
//   2. fast path or: enqueue self on the wait list, set state Blocked,
//   3. Engine::block_current(&guard) — the engine releases the guard only
//      after the blocking thread's context is fully saved,
//   4. a releasing thread pops a waiter under the guard and Engine::wake()s
//      it.
// Blocked threads keep their placeholder in the AsyncDF ordered list, so
// blocking composes with the space-efficient scheduler exactly as the paper
// describes. Bound threads use the same code; the engine parks them on the
// kernel instead of switching fibers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "threads/tcb.h"
#include "util/spinlock.h"

namespace dfth {

/// pthread_mutex_t equivalent. Non-recursive; FIFO handoff to waiters.
class Mutex {
 public:
  Mutex() = default;
  /// Unbinds the address from the record/replay schedule log (the allocator
  /// may recycle it for a new primitive within the same run). Same for every
  /// primitive below.
  ~Mutex();
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock();
  bool try_lock();
  /// lock() with a deadline: returns true if the mutex was acquired within
  /// `timeout_ns`, false on timeout (the mutex is then NOT held). Timeouts
  /// use the claim-token protocol (Engine::block_current_timed): wait-list
  /// membership under the guard is the claim, so a timeout and a handoff
  /// can never both win. The sync.timeout fault site injects an immediate
  /// timeout at entry.
  bool try_lock_for(std::uint64_t timeout_ns);
  void unlock();

  /// The thread currently holding the mutex (diagnostics/tests).
  bool held() const { return owner_ != nullptr; }

  /// True iff `t` is the current owner. CondVar::wait asserts this on its
  /// caller — waiting without holding the mutex is the classic lost-wakeup
  /// bug and is unconditionally fatal.
  bool held_by(const Tcb* t) const { return owner_ == t; }

 private:
  SpinLock guard_;
  Tcb* owner_ = nullptr;
  WaitList waiters_;
};

/// RAII lock for Mutex.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// pthread_cond_t equivalent.
class CondVar {
 public:
  CondVar() = default;
  ~CondVar();
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `m` and blocks; reacquires `m` before returning.
  void wait(Mutex& m);

  /// wait() with a deadline. Returns true if signaled, false on timeout; `m`
  /// is reacquired before returning either way (pthread_cond_timedwait
  /// semantics). An injected sync.timeout fault returns false immediately
  /// *without* ever releasing `m`.
  bool timed_wait(Mutex& m, std::uint64_t timeout_ns);

  /// wait() that returns once `pred()` holds (always rechecks the predicate
  /// under the mutex, so spurious signals are harmless).
  template <typename Pred>
  void wait_until(Mutex& m, Pred pred) {
    while (!pred()) wait(m);
  }

  void signal();
  void broadcast();

 private:
  SpinLock guard_;
  WaitList waiters_;
};

/// Counting semaphore (sema_t equivalent; Figure 3 measures its pair-sync
/// cost).
class Semaphore {
 public:
  explicit Semaphore(int initial = 0) : count_(initial) {}
  ~Semaphore();
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void acquire();       ///< P: decrement or block
  bool try_acquire();
  /// acquire() with a deadline: true if a unit was obtained within
  /// `timeout_ns`, false on timeout.
  bool try_acquire_for(std::uint64_t timeout_ns);
  void release();       ///< V: wake one waiter or increment

  int value() const { return count_; }

 private:
  SpinLock guard_;
  int count_ = 0;
  WaitList waiters_;
};

/// pthread_barrier_t equivalent (the coarse-grained SPLASH-2 codes
/// synchronize phases with one of these).
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}
  ~Barrier();
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until `parties` threads have arrived; the generation then flips
  /// and the barrier is immediately reusable.
  void arrive_and_wait();

  /// Completed-generation count. Atomic because observers poll it without
  /// the guard (a plain read here raced with arrive_and_wait's increment
  /// under the RealEngine — exactly the class of bug the happens-before
  /// race detector exists to catch).
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  SpinLock guard_;
  const int parties_;
  int arrived_ = 0;
  std::atomic<std::uint64_t> generation_{0};
  WaitList waiters_;
};

/// pthread_once_t equivalent.
class Once {
 public:
  void call(const std::function<void()>& fn);
  bool done() const { return done_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> done_{false};
  Mutex m_;
};

/// pthread_rwlock_t equivalent. Writer-preferring: once a writer waits, new
/// readers queue behind it (no writer starvation); a releasing writer hands
/// off to the next writer if any, otherwise wakes every waiting reader.
class RwLock {
 public:
  RwLock() = default;
  ~RwLock();
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void rdlock();
  bool try_rdlock();
  void rdunlock();

  void wrlock();
  bool try_wrlock();
  void wrunlock();

  // RAII helpers.
  class ReadGuard {
   public:
    explicit ReadGuard(RwLock& l) : l_(l) { l_.rdlock(); }
    ~ReadGuard() { l_.rdunlock(); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    RwLock& l_;
  };
  class WriteGuard {
   public:
    explicit WriteGuard(RwLock& l) : l_(l) { l_.wrlock(); }
    ~WriteGuard() { l_.wrunlock(); }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    RwLock& l_;
  };

 private:
  /// Called with guard_ held after a writer leaves; hands the lock on.
  void release_to_next();

  SpinLock guard_;
  int readers_ = 0;           ///< threads currently holding it shared
  bool writer_ = false;       ///< a thread currently holds it exclusive
  int waiting_writers_ = 0;
  WaitList read_waiters_;
  WaitList write_waiters_;
};

}  // namespace dfth
