// Execution-engine interface. The public API in runtime/api.h dispatches
// every thread operation to the active engine:
//   * SimEngine — deterministic discrete-event model of a p-processor SMP
//     (runtime/sim_engine.h); regenerates the paper's measurements.
//   * RealEngine — kernel-thread workers multiplexing fibers
//     (runtime/real_engine.h); true concurrency for stress tests and for
//     the Figure 3 operation-cost microbenchmarks.
//
// Threading contract: engine methods are called from fiber context (user
// code) except run(), which is called from the host thread that owns the
// runtime for the duration of the run.
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/run_stats.h"
#include "threads/tcb.h"
#include "util/spinlock.h"

namespace dfth {

class Engine {
 public:
  virtual ~Engine() = default;

  virtual EngineKind kind() const = 0;

  /// Executes `main_fn` as the main thread; returns when every thread
  /// (including detached ones) has exited.
  virtual RunStats run(const std::function<void()>& main_fn) = 0;

  // -- thread operations (fiber context) -----------------------------------
  virtual Tcb* current() = 0;
  /// `site_file`/`site_line` name the user-visible spawn call site (static
  /// storage duration) for the work/span profiler's attribution; the engine
  /// stores them on the child's Tcb before it can first run.
  virtual Tcb* spawn(std::function<void*()> fn, const Attr& attr, bool is_dummy,
                     const char* site_file = nullptr, int site_line = 0) = 0;
  virtual void* join(Tcb* t) = 0;
  virtual void detach(Tcb* t) = 0;
  virtual void yield() = 0;

  // -- synchronization support ----------------------------------------------
  /// Blocks the current fiber. The caller has already enqueued itself on a
  /// wait list and set its state to Blocked while holding `guard`; the
  /// engine releases `guard` only after the fiber's context is fully saved
  /// (so a concurrent wake() can never resume a half-saved context).
  virtual void block_current(SpinLock* guard) = 0;

  /// Makes a previously Blocked thread runnable again.
  virtual void wake(Tcb* t) = 0;

  /// Timed variant of block_current() for the sync timed-waits: the engine
  /// additionally arms a timer for `timeout_ns` (virtual ns in Sim,
  /// steady-clock ns in Real). If the timer fires before a waker pops the
  /// fiber from `list`, the engine removes it itself (the wait-list
  /// membership under `guard` is the claim token — exactly one of timer and
  /// waker wins), sets t->timed_out, and resumes the fiber. On return the
  /// caller inspects current()->timed_out to distinguish the two outcomes.
  virtual void block_current_timed(SpinLock* guard, WaitList* list,
                                   std::uint64_t timeout_ns) = 0;

  /// Charges the virtual cost of one uncontended sync operation (no-op in
  /// the real engine, where the cost is real).
  virtual void charge_sync_op() = 0;

  /// Engine-clock nanoseconds: the timebase for timed waits and for
  /// CancelToken::deadline_ns. Virtual ns in Sim, steady-clock ns in Real.
  virtual std::uint64_t now_ns() const = 0;

  // -- allocation accounting (called by df_malloc / df_free) -----------------
  virtual void on_alloc(std::size_t bytes, std::int64_t fresh_bytes) = 0;
  virtual void on_free(std::size_t bytes) = 0;
  /// True when the active scheduler bounds memory with per-scheduling quotas
  /// (AsyncDF); df_malloc then forks dummy threads for allocations > quota.
  virtual bool uses_alloc_quota() const = 0;
  virtual std::size_t quota_bytes() const = 0;

  /// Heap exhaustion recovery (df_malloc's retry loop). `attempt` counts
  /// failures for this one allocation, starting at 0. Returns true if the
  /// engine recovered enough to justify a retry — AsyncDF-style: treat OOM
  /// like quota exhaustion (preempt the fiber leftmost-ready, shrink the
  /// effective quota K so everyone allocates less per scheduling, back off)
  /// — or false to give up, surfacing DfStatus::kNoMem to the caller.
  virtual bool on_alloc_failed(std::size_t bytes, int attempt) = 0;

  // -- virtual-time annotations (no-ops in the real engine) -------------------
  virtual void add_work(std::uint64_t ops) = 0;
  virtual void touch(const std::uint32_t* block_ids, std::size_t count) = 0;
};

/// The active engine, or nullptr outside dfth::run(). Deliberately a
/// function (not a global) and never inlined: fibers migrate between kernel
/// threads in the real engine, and a compiler caching a thread-local read
/// across a context switch would read another worker's state.
Engine* engine();

namespace detail {
void set_engine(Engine* e);
}

}  // namespace dfth
