#include "runtime/sim_engine.h"

#include <algorithm>
#include <limits>

#include "analyze/race_hooks.h"
#include "core/worksteal_sched.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "replay/hooks.h"
#include "replay/log.h"
#include "resil/faults.h"
#include "resil/watchdog.h"
#include "space/tracked_heap.h"
#include "util/check.h"
#include "util/log.h"

#if DFTH_REPLAY
#include "replay/replay_sched.h"
#endif

#if DFTH_VALIDATE
#include "analyze/auditor.h"
#endif

namespace dfth {
namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

/// Real stack sizes are decoupled from simulated ones: simulated sizes feed
/// the cost/space model (a simulated 1 MB Solaris stack must not consume
/// 1 MB of host memory across thousands of live fibers), while real fibers
/// get enough space for the benchmarks' serial base cases.
constexpr std::size_t kRealStackBytes = 128 << 10;
constexpr std::size_t kRealMainStackBytes = 1 << 20;

double ns_to_us(std::uint64_t ns) { return static_cast<double>(ns) * 1e-3; }

}  // namespace

bool SimEngine::LruCache::touch_block(std::uint32_t id) {
  ++tick;
  std::size_t victim = 0;
  std::uint64_t oldest = kInf;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].first == id) {
      slots[i].second = tick;
      return true;
    }
    if (slots[i].second < oldest) {
      oldest = slots[i].second;
      victim = i;
    }
  }
  if (slots.size() < capacity) {
    slots.emplace_back(id, tick);
  } else if (capacity > 0) {
    slots[victim] = {id, tick};
  }
  return false;
}

SimEngine::SimEngine(const RuntimeOptions& opts) : opts_(opts) {
  DFTH_CHECK(opts_.nprocs >= 1);
#if DFTH_REPLAY
  if (auto* rs = replay::active();
      rs != nullptr && rs->mode() == replay::Mode::CrossReplay) {
    // Cross-replay: map the recorded run's dispatch order onto virtual time.
    // The pinned scheduler carries the *logged* policy kind (its needs_quota
    // answer must match the run that produced the schedule), and is built
    // directly so AuditedScheduler never audits a pinned schedule against a
    // policy it does not implement.
    sched_ = std::make_unique<replay::ReplayScheduler>(
        rs, static_cast<SchedKind>(rs->header().sched),
        replay::ReplayScheduler::Pinning::Cross);
  }
  if (!sched_)
#endif
  sched_ = make_scheduler(opts_.sched, opts_.nprocs, opts_.seed,
                          opts_.cluster_size);
  procs_.resize(static_cast<std::size_t>(opts_.nprocs));
  for (auto& vp : procs_) vp.cache.capacity = opts_.cost.cache_blocks;
  eff_quota_ = opts_.mem_quota;
  stats_.engine = EngineKind::Sim;
  stats_.sched = opts_.sched;
  stats_.nprocs = opts_.nprocs;
}

SimEngine::~SimEngine() {
  for (Tcb* t : all_tcbs_) {
    if (t->stack) StackPool::instance().release(t->stack);
    context_destroy(&t->ctx);
    delete t;
  }
  context_destroy(&loop_ctx_);
}

void SimEngine::fiber_entry(void* arg) {
  Tcb* t = static_cast<Tcb*>(arg);
  auto* self = static_cast<SimEngine*>(engine());
  t->result = t->entry();
  t->entry = nullptr;  // release captured resources promptly
  self->charge(kThread, self->opts_.cost.exit_us);
  self->ev_ = Ev::Exit;
  context_switch_final(&t->ctx, &self->loop_ctx_);
}

Tcb* SimEngine::make_tcb(std::function<void*()> fn, const Attr& attr, bool is_dummy) {
  Tcb* t = new Tcb(next_tid_++);
  t->attr = attr;
  if (t->attr.stack_size == 0) t->attr.stack_size = opts_.default_stack_size;
  DFTH_CHECK(t->attr.priority >= 0 && t->attr.priority < kNumPriorities);
  t->entry = std::move(fn);
  t->is_dummy = is_dummy;
  t->detached = attr.detached;
  t->stack = StackPool::instance().acquire(is_dummy ? (64 << 10) : kRealStackBytes);
  if (t->stack && DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kCtxCreate)) {
    StackPool::instance().release(t->stack);
    t->stack = Stack{};
    // The inline-run fallback in spawn() is guaranteed to absorb this.
    DFTH_FAULT_RECOVERED(resil::FaultSite::kCtxCreate);
  }
  if (t->stack) {
    context_make(&t->ctx, t->stack.base, t->stack.top(), &fiber_entry, t);
  }
  all_tcbs_.push_back(t);
  return t;
}

void SimEngine::charge(Cat cat, double us) {
  pend_ns_[cat] += us_to_ns(us);
}

std::uint64_t SimEngine::vnow_ns() const {
  if (!in_fiber_) return loop_now_ns_;
  std::uint64_t pend = 0;
  for (int c = 0; c < kNumCats; ++c) pend += pend_ns_[c];
  return procs_[static_cast<std::size_t>(cur_proc_)].clock_ns + pend;
}

void SimEngine::switch_to_loop() {
  Tcb* self = cur_;
  context_switch(&self->ctx, &loop_ctx_);
}

// -- fiber-context operations --------------------------------------------------

Tcb* SimEngine::spawn(std::function<void*()> fn, const Attr& attr, bool is_dummy,
                      const char* site_file, int site_line) {
  DFTH_CHECK_MSG(in_fiber_, "spawn outside a thread");
  Tcb* child = make_tcb(std::move(fn), attr, is_dummy);
  child->parent = cur_;
  // Deadline propagation: a child without its own cancellation scope joins
  // the parent's, so a request's token covers the whole spawn subtree.
  child->cancel = attr.cancel != nullptr ? attr.cancel : cur_->cancel;
  child->site_file = site_file;
  child->site_line = site_line;
  DFTH_RACE_FORK(child, cur_);
  if (Recorder* rec = active_recorder()) rec->on_thread_start(child->id, cur_->id);
  DFTH_TRACE_EMIT(cur_proc_,
                  is_dummy ? obs::EvKind::DummySpawn : obs::EvKind::Fork,
                  cur_->id, child->id);
  if (!child->stack) return run_inline(child);
  ev_ = Ev::Spawn;
  ev_child_ = child;
  switch_to_loop();
  return child;
}

Tcb* SimEngine::run_inline(Tcb* child) {
  // Stack or context acquisition failed. Degrade by running the child to
  // completion right here, on the parent's stack: the child precedes the
  // parent's continuation in the serial depth-first order, so this is the
  // 1-processor AsyncDF schedule — correct, just not parallel. The child is
  // never registered with the scheduler and never gets its own fiber.
  ++stats_.threads_created;
  ++stats_.inline_runs;
  if (child->is_dummy) ++stats_.dummy_threads;
  DFTH_COUNT(obs::Counter::InlineRuns);
#if DFTH_VALIDATE
  if (auto* aud = analyze::active_auditor()) aud->on_inline_run(cur_, child);
#endif
  charge(kThread, opts_.cost.create_unbound_us);
  DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::SpawnReg, cur_->id, child->id,
                     ::dfth::replay::kSpawnInline);
  live_events_.emplace_back(vnow_ns(), +1);
  child->state.store(ThreadState::Running, std::memory_order_relaxed);
  ++child->dispatches;
  DFTH_TRACE_EMIT(cur_proc_, obs::EvKind::Dispatch, child->id,
                  child->dispatches);
  // Profiler bookkeeping so fiber counts match: the child exists, but its
  // body's charges accrue to the parent (serialized on the parent's span —
  // exactly what running inline means), so its own span stays at the
  // inherited fork-instant value.
  DFTH_PROF_THREAD_START(child->id, cur_->id, pend_total_ns(),
                         child->site_file, child->site_line);
  // cur_ stays the parent: virtual cost and race segments accrued by the
  // child's body are attributed to the parent, which is exactly what running
  // on the parent's stack in its scheduling window means.
  child->result = child->entry();
  child->entry = nullptr;
  charge(kThread, opts_.cost.exit_us);
  child->finished = true;
  child->state.store(ThreadState::Done, std::memory_order_relaxed);
  live_events_.emplace_back(vnow_ns(), -1);
  DFTH_TRACE_EMIT(cur_proc_, obs::EvKind::Exit, child->id, 0);
  DFTH_PROF_EXIT(child->id, 0);
  // No joiner can exist yet: the handle only becomes visible once we return.
  return child;
}

void* SimEngine::join(Tcb* t) {
  DFTH_CHECK_MSG(in_fiber_, "join outside a thread");
  DFTH_CHECK_MSG(!t->detached, "join of detached thread");
  DFTH_CHECK_MSG(!t->joined, "thread joined twice");
  charge(kThread, opts_.cost.join_us);
  DFTH_TRACE_EMIT(cur_proc_, obs::EvKind::Join, cur_->id, t->id);
  if (!t->finished) {
    DFTH_CHECK_MSG(t->joiner == nullptr, "two concurrent joiners");
    t->joiner = cur_;
    cur_->state.store(ThreadState::Blocked, std::memory_order_relaxed);
    ev_ = Ev::Block;
    ev_guard_ = nullptr;
    switch_to_loop();
    DFTH_CHECK(t->finished);
    // The span edge for this path came from wake() when the child exited.
  } else {
    // Fast path — the child already finished, the joiner never blocks; take
    // the span max here (offset: the joiner's uncharged fiber-side costs,
    // join_us included).
    DFTH_PROF_JOIN(cur_->id, t->id, pend_total_ns());
  }
  t->joined = true;
  return t->result;
}

void SimEngine::detach(Tcb* t) { t->detached = true; }

void SimEngine::yield() {
  DFTH_CHECK_MSG(in_fiber_, "yield outside a thread");
  ev_ = Ev::Yield;
  switch_to_loop();
}

void SimEngine::block_current(SpinLock* guard) {
  DFTH_CHECK_MSG(in_fiber_, "block outside a thread");
  DFTH_CHECK(cur_->state.load(std::memory_order_relaxed) == ThreadState::Blocked);
  DFTH_CHECK_MSG(guard == nullptr || guard->is_locked(),
                 "block_current without holding the wait-list guard");
  charge(kSync, opts_.cost.block_us);
  ev_ = Ev::Block;
  ev_guard_ = guard;
  switch_to_loop();
}

void SimEngine::block_current_timed(SpinLock* guard, WaitList* list,
                                    std::uint64_t timeout_ns) {
  DFTH_CHECK_MSG(in_fiber_, "timed block outside a thread");
  DFTH_CHECK(cur_->state.load(std::memory_order_relaxed) == ThreadState::Blocked);
  DFTH_CHECK_MSG(guard != nullptr && guard->is_locked(),
                 "block_current_timed without holding the wait-list guard");
  DFTH_CHECK(list != nullptr);
  cur_->timed_out = false;
  charge(kSync, opts_.cost.block_us);
  sleepers_.push_back({vnow_ns() + timeout_ns, cur_, guard, list});
  ev_ = Ev::Block;
  ev_guard_ = guard;
  switch_to_loop();
  // Resumed — by the timer or by a waker. Either way our timer entry is
  // dead; drop it so a later wait cannot be hit by this deadline.
  cancel_sleeper(cur_);
}

void SimEngine::cancel_sleeper(Tcb* t) {
  for (std::size_t i = 0; i < sleepers_.size(); ++i) {
    if (sleepers_[i].t == t) {
      sleepers_.erase(sleepers_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void SimEngine::fire_due_sleepers(VProc& vp, int pid) {
  for (std::size_t i = 0; i < sleepers_.size();) {
    if (sleepers_[i].deadline_ns > vp.clock_ns) {
      ++i;
      continue;
    }
    const SimSleeper s = sleepers_[i];
    sleepers_.erase(sleepers_.begin() + static_cast<std::ptrdiff_t>(i));
    // Claim protocol: membership in the wait list under its guard is the
    // claim. If the waiter is no longer on the list, a waker popped it first
    // and its wake() owns the resume; the timer loses quietly.
    s.guard->lock();
    const bool claimed = s.list->remove(s.t);
    s.guard->unlock();
    if (!claimed) continue;
    s.t->timed_out = true;
    ++stats_.sync_timeouts;
    DFTH_COUNT(obs::Counter::SyncTimeouts);
    DFTH_TRACE_EMIT_AT(pid, obs::EvKind::Wake, vp.clock_ns, s.t->id, 0);
    sched_lock_acquire(vp, pid);
    s.t->state.store(ThreadState::Ready, std::memory_order_relaxed);
    s.t->ready_at_ns = s.deadline_ns;  // eligible from its deadline instant
    sched_->on_ready(s.t, pid);
  }
}

void SimEngine::wake(Tcb* t) {
  DFTH_CHECK(t->state.load(std::memory_order_relaxed) == ThreadState::Blocked);
  DFTH_TRACE_EMIT(cur_proc_ >= 0 ? cur_proc_ : 0, obs::EvKind::Wake, t->id,
                  cur_ ? cur_->id : 0);
  // Happens-before edge waker → wakee: the same edge the race detector
  // orders. Covers both sync-object wakes (fiber context, offset = pending
  // charges) and the exit → joiner wake (loop context, cur_ = the exiting
  // child whose final span the joiner inherits).
  DFTH_PROF_WAKE(cur_ ? cur_->id : 0, t->id, in_fiber_ ? pend_total_ns() : 0);
  t->state.store(ThreadState::Ready, std::memory_order_relaxed);
  t->ready_at_ns = vnow_ns();
  sched_->on_ready(t, cur_proc_ >= 0 ? cur_proc_ : 0);
  if (in_fiber_) charge(kSync, opts_.cost.sched_op_us);
}

void SimEngine::charge_sync_op() {
  charge(kSync, opts_.cost.sync_op_us);
  if (!in_fiber_) return;
  // Pause at every sync operation (see Ev::SyncPause): the loop will resume
  // this fiber once its processor is again the earliest, so the operation's
  // effect lands in virtual-time order relative to other threads' sync ops.
  ev_ = Ev::SyncPause;
  switch_to_loop();
}

void SimEngine::on_alloc(std::size_t bytes, std::int64_t fresh_bytes) {
  charge(kMem, opts_.cost.malloc_us(bytes, fresh_bytes));
  heap_events_.emplace_back(vnow_ns(), static_cast<std::int64_t>(bytes));
  DFTH_TRACE_ALLOC_EVENT(cur_proc_ >= 0 ? cur_proc_ : 0, obs::EvKind::Alloc,
                         cur_ ? cur_->id : 0, bytes);
  if (sched_->needs_quota() && in_fiber_) {
    cur_->quota -= static_cast<std::int64_t>(bytes);
    if (cur_->quota <= 0) {
      // §4 item 2: "when the counter reaches zero, the thread is preempted."
      DFTH_TRACE_EMIT(cur_proc_, obs::EvKind::QuotaExhaust, cur_->id, bytes);
      ev_ = Ev::QuotaPreempt;
      switch_to_loop();
    }
  }
}

void SimEngine::on_free(std::size_t bytes) {
  charge(kMem, opts_.cost.free_base_us);
  heap_events_.emplace_back(vnow_ns(), -static_cast<std::int64_t>(bytes));
  DFTH_TRACE_ALLOC_EVENT(cur_proc_ >= 0 ? cur_proc_ : 0, obs::EvKind::Free,
                         cur_ ? cur_->id : 0, bytes);
}

bool SimEngine::uses_alloc_quota() const { return sched_->needs_quota(); }

bool SimEngine::on_alloc_failed(std::size_t bytes, int attempt) {
  (void)bytes;
  // Treat heap exhaustion as quota exhaustion (AsyncDF-style): preempt,
  // reinsert leftmost-ready, shrink the effective K so every later
  // scheduling window admits fewer live allocations, back off, retry. A
  // bounded number of attempts keeps a genuinely-unsatisfiable request from
  // looping forever; df_try_malloc then surfaces DfStatus::kNoMem.
  constexpr int kOomMaxAttempts = 16;
  if (!in_fiber_ || attempt >= kOomMaxAttempts) return false;
  ++stats_.oom_preemptions;
  DFTH_COUNT(obs::Counter::OomPreempts);
#if DFTH_VALIDATE
  if (auto* aud = analyze::active_auditor()) aud->on_oom_preempt(cur_);
#endif
  if (eff_quota_ > 0) eff_quota_ = std::max<std::size_t>(eff_quota_ / 2, 4096);
  // Exponential virtual backoff: later attempts wait longer for concurrent
  // frees to land.
  charge(kMem, opts_.cost.free_base_us *
                   static_cast<double>(1u << std::min(attempt, 10)));
  ev_ = Ev::OomPreempt;
  switch_to_loop();
  return true;
}

void SimEngine::add_work(std::uint64_t ops) {
  // Memory pressure multiplies the cost of useful work: a large live
  // footprint (heap plus the touched pages of live and cached stacks) means
  // TLB/page misses on every access (paper §3.1 and Figure 6).
  const double mult = opts_.cost.pressure(TrackedHeap::instance().live_bytes() +
                                          sim_stack_touched_);
  charge(kWork, opts_.cost.work_us(ops) * mult);
}

void SimEngine::touch(const std::uint32_t* block_ids, std::size_t count) {
  if (!in_fiber_) return;
  auto& cache = procs_[static_cast<std::size_t>(cur_proc_)].cache;
  double us = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    if (cache.touch_block(block_ids[i])) {
      ++stats_.cache_hits;
      us += opts_.cost.cache_hit_us;
    } else {
      ++stats_.cache_misses;
      us += opts_.cost.cache_miss_us;
    }
  }
  charge(kMem, us);
}

// -- simulated stack pool ---------------------------------------------------

double SimEngine::sim_stack_acquire_us(std::size_t bytes) {
  sim_stack_live_ += static_cast<std::int64_t>(bytes);
  auto it = sim_stack_pool_.find(bytes);
  double us;
  if (it != sim_stack_pool_.end() && it->second > 0) {
    // A cached stack is already mapped and touched; its footprint simply
    // moves from the pool back to a live thread.
    --it->second;
    sim_stack_pooled_ -= static_cast<std::int64_t>(bytes);
    ++stats_.stacks_reused;
    DFTH_TRACE_EMIT(cur_proc_ >= 0 ? cur_proc_ : 0, obs::EvKind::StackReuse,
                    cur_ ? cur_->id : 0, bytes);
    us = opts_.cost.stack_pooled_us;
  } else {
    ++stats_.stacks_fresh;
    sim_stack_touched_ += static_cast<std::int64_t>(
        std::min(bytes, opts_.cost.stack_touched_cap));
    DFTH_TRACE_EMIT(cur_proc_ >= 0 ? cur_proc_ : 0, obs::EvKind::StackFresh,
                    cur_ ? cur_->id : 0, bytes);
    us = opts_.cost.stack_fresh_us(bytes);
  }
  sim_stack_peak_ = std::max(sim_stack_peak_, sim_stack_live_ + sim_stack_pooled_);
  return us;
}

void SimEngine::sim_stack_release(std::size_t bytes) {
  sim_stack_live_ -= static_cast<std::int64_t>(bytes);
  sim_stack_pooled_ += static_cast<std::int64_t>(bytes);
  ++sim_stack_pool_[bytes];
}

// -- the event loop --------------------------------------------------------

RunStats SimEngine::run(const std::function<void()>& main_fn) {
  TrackedHeap::instance().begin_epoch();
  heap_initial_live_ = TrackedHeap::instance().live_bytes();
  eff_quota_ = opts_.mem_quota;

  // Arm the fault injector for this run if the caller supplied a plan (no-op
  // when faults are compiled out). Per-run fault stats are deltas so a
  // harness that armed the injector itself (and keeps it armed across runs)
  // still gets accurate counts.
  auto& inj = resil::FaultInjector::instance();
  const bool armed_here = resil::kFaultsEnabled && opts_.fault_plan != nullptr;
  if (armed_here) inj.arm(*opts_.fault_plan);
  const std::uint64_t injected0 = inj.injected_total();
  const std::uint64_t recovered0 = inj.recovered_total();

#if DFTH_TRACE
  if (opts_.tracer) {
    obs::detail::set_tracer(opts_.tracer);
    opts_.tracer->begin_run(opts_.nprocs, [this] { return vnow_ns(); });
    sample_interval_ns_ = opts_.tracer->config().sample_interval_ns;
    if (sample_interval_ns_ == 0) sample_interval_ns_ = 1000;  // 1 µs virtual
    next_sample_ns_ = 0;
  }
#endif

#if DFTH_PROF
  if (opts_.profiler) {
    opts_.profiler->begin_run();
    obs::detail::set_profiler(opts_.profiler);
  }
#endif

  Attr main_attr;
  Tcb* main = new Tcb(next_tid_++);
  main->attr = main_attr;
  main->attr.stack_size = opts_.default_stack_size;
  main->is_main = true;
  main->entry = [&main_fn]() -> void* {
    main_fn();
    return nullptr;
  };
  main->stack = StackPool::instance().acquire(kRealMainStackBytes);
  // The main fiber has no parent to run inline on: a null stack here means
  // even the heap-backed fallback failed — the host is truly out of memory.
  DFTH_CHECK_MSG(main->stack, "out of memory acquiring the main fiber stack");
  context_make(&main->ctx, main->stack.base, main->stack.top(), &fiber_entry, main);
  all_tcbs_.push_back(main);
  DFTH_RACE_FORK(main, nullptr);

  live_ = 1;
  stats_.threads_created = 1;
  live_events_.emplace_back(0, +1);
  sim_stack_acquire_us(main->attr.stack_size);  // cost of the first stack: free
  sched_->register_thread(nullptr, main);
  // Single host thread: recording needs no gates here or below — commits
  // merely stamp the (already deterministic) decision order into the log so
  // a Sim log can be inspected and cross-replayed like a Real one.
  DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::SpawnReg,
                     ::dfth::replay::kActorHost, main->id, 0);
  main->state.store(ThreadState::Ready, std::memory_order_relaxed);
  main->ready_at_ns = 0;
  sched_->on_ready(main, 0);
  main->site_file = "<main>";
  main->site_line = 0;
  DFTH_PROF_THREAD_START(main->id, 0, 0, main->site_file, main->site_line);

  sim_loop();

  // Finalize: pad every processor with idle time to the completion instant
  // so breakdown percentages are over p * T_completion, then aggregate.
  std::uint64_t completion = 0;
  for (const auto& vp : procs_) completion = std::max(completion, vp.clock_ns);
  stats_.elapsed_us = ns_to_us(completion);
  for (auto& vp : procs_) {
    vp.bd.idle_us += ns_to_us(completion - vp.clock_ns);
    for (int c = 0; c < Breakdown::kNumCategories; ++c) {
      stats_.breakdown.category(c) += vp.bd.category(c);
    }
  }
  // Max simultaneously-active threads: sweep the birth/death events in
  // virtual-time order (births before deaths at the same instant — a thread
  // exiting exactly when another starts briefly coexists with it).
  std::sort(live_events_.begin(), live_events_.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first : a.second > b.second;
            });
  std::int64_t level = 0;
  for (const auto& [when, delta] : live_events_) {
    (void)when;
    level += delta;
    stats_.max_live_threads = std::max(stats_.max_live_threads, level);
  }

  // Heap high-water over virtual time (frees before allocations at equal
  // instants, matching allocator reuse), on top of whatever was live when
  // the run started (e.g. input matrices).
  std::sort(heap_events_.begin(), heap_events_.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first : a.second < b.second;
            });
  std::int64_t heap_level = heap_initial_live_;
  stats_.heap_peak = heap_level;
  for (const auto& [when, delta] : heap_events_) {
    (void)when;
    heap_level += delta;
    stats_.heap_peak = std::max(stats_.heap_peak, heap_level);
  }
  stats_.stack_peak = sim_stack_peak_;
  // Real stacks back the simulated fibers too, so the watermark is
  // meaningful even under the Sim engine.
  stats_.stack_high_water = StackPool::instance().high_water_bytes();
  if (auto* ws = dynamic_cast<WorkStealScheduler*>(sched_->underlying())) {
    stats_.steals = ws->steal_count();
  }
  finish_trace(completion);
#if DFTH_PROF
  if (opts_.profiler) {
    opts_.profiler->end_run(stats_.elapsed_us, opts_.nprocs);
    stats_.profile = opts_.profiler->stats();
    obs::detail::set_profiler(nullptr);
  }
#endif
  stats_.faults_injected = inj.injected_total() - injected0;
  stats_.faults_recovered = inj.recovered_total() - recovered0;
  if (armed_here) inj.disarm();
  return stats_;
}

void SimEngine::finish_trace(std::uint64_t completion_ns) {
#if DFTH_TRACE
  obs::Tracer* tr = obs::tracer();
  if (!tr) {
    (void)completion_ns;
    return;
  }
  // Close the time series at the completion instant, then fill in the exact
  // live-thread and heap levels at every sample instant by sweeping the
  // already-sorted virtual-time event lists (the online pass cannot know
  // them: a fiber's whole life can commit in one host resume).
  obs::Sample last;
  last.ts_ns = completion_ns;
  last.stack_bytes = sim_stack_live_ + sim_stack_pooled_;
  last.ready = static_cast<std::int64_t>(sched_->ready_count());
  trace_samples_.push_back(last);
  std::sort(trace_samples_.begin(), trace_samples_.end(),
            [](const obs::Sample& a, const obs::Sample& b) {
              return a.ts_ns < b.ts_ns;
            });
  std::size_t li = 0, hi = 0;
  std::int64_t live_level = 0;
  std::int64_t heap_level = heap_initial_live_;
  for (obs::Sample& s : trace_samples_) {
    while (li < live_events_.size() && live_events_[li].first <= s.ts_ns) {
      live_level += live_events_[li++].second;
    }
    while (hi < heap_events_.size() && heap_events_[hi].first <= s.ts_ns) {
      heap_level += heap_events_[hi++].second;
    }
    s.live_threads = live_level;
    s.heap_bytes = heap_level;
    tr->add_sample(s);
  }
  tr->end_run();
  obs::detail::set_tracer(nullptr);
#else
  (void)completion_ns;
#endif
}

void SimEngine::maybe_sample(std::uint64_t now_ns) {
#if DFTH_TRACE
  if (!obs::tracer() || now_ns < next_sample_ns_) return;
  obs::Sample s;
  s.ts_ns = now_ns;
  s.stack_bytes = sim_stack_live_ + sim_stack_pooled_;
  s.ready = static_cast<std::int64_t>(sched_->ready_count());
  trace_samples_.push_back(s);
  next_sample_ns_ = now_ns + sample_interval_ns_;
  // Run length is unknown up front: when the series fills, halve the
  // resolution and double the interval, keeping memory bounded while the
  // final spacing stays proportional to the run's actual length.
  constexpr std::size_t kMaxSamples = 4096;
  if (trace_samples_.size() >= kMaxSamples) {
    std::vector<obs::Sample> kept;
    kept.reserve(trace_samples_.size() / 2 + 1);
    for (std::size_t i = 0; i < trace_samples_.size(); i += 2) {
      kept.push_back(trace_samples_[i]);
    }
    trace_samples_.swap(kept);
    sample_interval_ns_ *= 2;
  }
#else
  (void)now_ns;
#endif
}

void SimEngine::sim_loop() {
  const std::uint64_t wd_deadline = opts_.watchdog.virtual_deadline_ns;
  // Liveness heartbeat (resil/watchdog.h): when the caller beats, the
  // virtual deadline becomes a window since the last beat, so an
  // intentionally idle-but-armed serving run is never mistaken for a stall.
  std::uint64_t hb_seen = 0;
  std::uint64_t hb_base_ns = 0;
  while (live_ > 0) {
    const int pid = pick_proc();
    VProc& vp = procs_[static_cast<std::size_t>(pid)];
    // Virtual-time stall watchdog: pick_proc returns the minimum clock, so
    // crossing the deadline here means *every* processor is past it and the
    // run is still not finished.
    if (wd_deadline != 0) {
      if (const auto* hb = opts_.watchdog.heartbeat) {
        const std::uint64_t v = hb->load(std::memory_order_relaxed);
        if (v != hb_seen) {
          hb_seen = v;
          hb_base_ns = vp.clock_ns;
        }
      }
      if (vp.clock_ns > hb_base_ns && vp.clock_ns - hb_base_ns > wd_deadline) {
        dump_flight("SimEngine watchdog: virtual-time deadline exceeded");
        DFTH_CHECK_MSG(false, "virtual-time stall watchdog tripped");
      }
    }
    if (vp.running) {
      cur_ = vp.running;
      cur_proc_ = pid;
      in_fiber_ = true;
      for (auto& p : pend_ns_) p = 0;
      ev_ = Ev::None;
      ev_child_ = nullptr;
      ev_guard_ = nullptr;

      context_switch(&loop_ctx_, &cur_->ctx);

      in_fiber_ = false;
      apply_pending(vp);
      loop_now_ns_ = vp.clock_ns;
      DFTH_CHECK_MSG(ev_ != Ev::None, "fiber switched out without an event");
      handle_event(vp, pid);
      cur_ = nullptr;
    } else {
      attempt_dispatch(vp, pid);
    }
    maybe_sample(vp.clock_ns);
  }
}

int SimEngine::pick_proc() const {
  int best = 0;
  for (int i = 1; i < static_cast<int>(procs_.size()); ++i) {
    const auto& a = procs_[static_cast<std::size_t>(i)];
    const auto& b = procs_[static_cast<std::size_t>(best)];
    // Min clock; ties prefer a processor holding a fiber (it must generate
    // the events an equal-clock idle processor is waiting for).
    if (a.clock_ns < b.clock_ns ||
        (a.clock_ns == b.clock_ns && a.running && !b.running)) {
      best = i;
    }
  }
  return best;
}

void SimEngine::apply_pending(VProc& vp) {
  // Everything a fiber charged between scheduling points is pure fiber time:
  // it is the profiler's "work" (advances span too), as opposed to the
  // loop-side clock advances below, which are scheduler overhead.
  DFTH_PROF_WORK(vp.running->id, pend_total_ns());
  vp.clock_ns += pend_ns_[kWork] + pend_ns_[kThread] + pend_ns_[kMem] + pend_ns_[kSync];
  vp.bd.work_us += ns_to_us(pend_ns_[kWork]);
  vp.bd.thread_us += ns_to_us(pend_ns_[kThread]);
  vp.bd.mem_us += ns_to_us(pend_ns_[kMem]);
  vp.bd.sync_us += ns_to_us(pend_ns_[kSync]);
  for (auto& p : pend_ns_) p = 0;
}

void SimEngine::sched_lock_acquire(VProc& vp) { sched_lock_acquire(vp, 0); }

void SimEngine::sched_lock_acquire(VProc& vp, int proc) {
  // The scheduler's global queue is serialized by one lock (paper §6). The
  // lock is busy only *during* queue operations, so a processor is made to
  // wait only when its operation lands within the contention window of the
  // most recent one (near-simultaneous operations queue up behind each
  // other); an operation that maps to an instant further in the virtual
  // past found the lock free back then. (Events are simulated slightly out
  // of virtual-time order — a fiber's long run commits at its end — so the
  // busy horizon can be ahead of this processor's clock without implying
  // the lock was held the whole time.)
  const int domain = sched_->lock_domain(proc);
  if (lock_free_ns_.size() <= static_cast<std::size_t>(domain)) {
    lock_free_ns_.resize(static_cast<std::size_t>(domain) + 1, 0);
  }
  std::uint64_t& lock_free = lock_free_ns_[static_cast<std::size_t>(domain)];
  const std::uint64_t op = us_to_ns(opts_.cost.sched_op_us);
  const std::uint64_t window = op * static_cast<std::uint64_t>(4 * opts_.nprocs);
  std::uint64_t start = vp.clock_ns;
  if (lock_free > vp.clock_ns && lock_free - vp.clock_ns <= window) {
    start = lock_free;  // genuine contention: queue behind the last op
  }
  const std::uint64_t wait = start - vp.clock_ns;
  vp.bd.sched_us += ns_to_us(wait + op);
  vp.clock_ns = start + op;
  if (start + op > lock_free) lock_free = start + op;
}

void SimEngine::make_ready(VProc& vp, int pid, Tcb* t) {
  t->state.store(ThreadState::Ready, std::memory_order_relaxed);
  t->ready_at_ns = vp.clock_ns;
  sched_->on_ready(t, pid);
}

std::uint64_t SimEngine::expire_on_dispatch(Tcb* t, int pid,
                                            std::uint64_t now) {
  CancelToken* c = t->cancel;
  if (c == nullptr || c->deadline_ns == 0 || c->is_cancelled() ||
      now < c->deadline_ns) {
    return 0;
  }
  // Virtual time makes this decision deterministic, so no replay pinning is
  // needed here — the flag still lands in the Dispatch record so Real
  // replays of the same format stay uniform and tools see it.
  c->cancel();
  ++stats_.deadline_expirations;
  DFTH_TRACE_EMIT_AT(pid, obs::EvKind::Preempt, now, t->id,
                     obs::kPreemptDeadline);
  DFTH_REPLAY_CANCEL_FIRE(pid, t->id);
  return ::dfth::replay::kDispatchDeadline;
}

void SimEngine::attempt_dispatch(VProc& vp, int pid) {
  // Keep the loop clock fresh: schedulers emit Steal events from inside
  // pick_next through the tracer clock, which reads loop_now_ns_ here.
  loop_now_ns_ = vp.clock_ns;
  const std::uint64_t fire_t0 = vp.clock_ns;
  fire_due_sleepers(vp, pid);
  DFTH_PROF_OVERHEAD(0, vp.clock_ns - fire_t0);
  std::uint64_t earliest = kInf;
  Tcb* t = sched_->pick_next(pid, vp.clock_ns, &earliest);
  if (t) {
    const std::uint64_t disp_t0 = vp.clock_ns;
    sched_lock_acquire(vp, pid);
    vp.clock_ns += us_to_ns(opts_.cost.ctx_switch_us);
    vp.bd.thread_us += opts_.cost.ctx_switch_us;
    t->state.store(ThreadState::Running, std::memory_order_relaxed);
    t->quota = static_cast<std::int64_t>(eff_quota_);
    ++t->dispatches;
    ++stats_.dispatches;
    DFTH_TRACE_EMIT_AT(pid, obs::EvKind::Dispatch, vp.clock_ns, t->id,
                       t->dispatches);
    // Outside the commit macro: the deadline check must run even when the
    // build has no replay layer.
    [[maybe_unused]] const std::uint64_t cancel_b =
        expire_on_dispatch(t, pid, vp.clock_ns);
    DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::Dispatch,
                       ::dfth::replay::lane_actor(pid), t->id, cancel_b);
    // The lane's accumulated idle time is this dispatch's gap; it burdens
    // the fiber (an ideal scheduler would have run it sooner) and must be
    // consumed whether or not a profiler is installed.
    DFTH_PROF_DISPATCH(t->id, vp.clock_ns - disp_t0, vp.pending_gap_ns);
    DFTH_HIST(obs::Hist::DispatchGapNs, vp.pending_gap_ns);
    vp.pending_gap_ns = 0;
    vp.running = t;
    return;
  }

  // Nothing eligible: advance to the next instant anything can change —
  // the earliest future ready time, the nearest timed-wait deadline, or the
  // clock of a processor that holds a fiber (its next event may wake/spawn
  // work).
  std::uint64_t horizon = earliest;
  for (const SimSleeper& s : sleepers_) {
    horizon = std::min(horizon, s.deadline_ns);
  }
  for (const auto& other : procs_) {
    if (other.running) horizon = std::min(horizon, other.clock_ns);
  }
  if (horizon == kInf) report_deadlock();
  DFTH_CHECK_MSG(horizon > vp.clock_ns, "simulation failed to make progress");
  vp.bd.idle_us += ns_to_us(horizon - vp.clock_ns);
  vp.pending_gap_ns += horizon - vp.clock_ns;
  vp.clock_ns = horizon;
}

void SimEngine::handle_event(VProc& vp, int pid) {
  switch (ev_) {
    case Ev::Spawn: {
      Tcb* child = ev_child_;
      Tcb* parent = vp.running;
      const std::uint64_t fork_t0 = vp.clock_ns;
      const double create_us = child->attr.bound ? opts_.cost.create_bound_us
                                                 : opts_.cost.create_unbound_us;
      vp.clock_ns += us_to_ns(create_us);
      vp.bd.thread_us += create_us;
      const double stack_us = sim_stack_acquire_us(child->attr.stack_size);
      vp.clock_ns += us_to_ns(stack_us);
      vp.bd.mem_us += stack_us;

      sched_lock_acquire(vp, pid);
      const bool preempt_parent = sched_->register_thread(parent, child);
      DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::SpawnReg, parent->id,
                         child->id,
                         preempt_parent ? ::dfth::replay::kSpawnPreempt : 0);
      ++live_;
      ++stats_.threads_created;
      if (child->is_dummy) ++stats_.dummy_threads;
      live_events_.emplace_back(vp.clock_ns, +1);
      // Fork edge: the child inherits the parent's span as of the fork
      // instant (the parent's charges were applied before this event, so no
      // pending offset), and carries the observed creation cost as burden.
      DFTH_PROF_THREAD_START(child->id, parent->id, 0, child->site_file,
                             child->site_line);
      DFTH_PROF_FORK_COST(child->id, vp.clock_ns - fork_t0);

      if (preempt_parent) {
        // AsyncDF / work stealing: the processor dives into the child.
        make_ready(vp, pid, parent);
        DFTH_TRACE_EMIT_AT(pid, obs::EvKind::Preempt, vp.clock_ns, parent->id,
                           obs::kPreemptForkDive);
        child->state.store(ThreadState::Running, std::memory_order_relaxed);
        child->ready_at_ns = vp.clock_ns;
        child->quota = static_cast<std::int64_t>(eff_quota_);
        ++child->dispatches;
        ++stats_.dispatches;
        vp.running = child;
        vp.clock_ns += us_to_ns(opts_.cost.ctx_switch_us);
        vp.bd.thread_us += opts_.cost.ctx_switch_us;
        DFTH_TRACE_EMIT_AT(pid, obs::EvKind::Dispatch, vp.clock_ns, child->id,
                           child->dispatches);
        DFTH_PROF_DISPATCH(child->id, us_to_ns(opts_.cost.ctx_switch_us), 0);
        [[maybe_unused]] const std::uint64_t cancel_b =
            expire_on_dispatch(child, pid, vp.clock_ns);
        DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::Dispatch,
                           ::dfth::replay::lane_actor(pid), child->id,
                           ::dfth::replay::kDispatchForkDive | cancel_b);
      } else {
        // FIFO / LIFO: the child waits its turn; the parent continues.
        child->state.store(ThreadState::Ready, std::memory_order_relaxed);
        child->ready_at_ns = vp.clock_ns;
        sched_->on_ready(child, pid);
      }
      break;
    }

    case Ev::Exit: {
      Tcb* t = vp.running;
      const std::uint64_t exit_t0 = vp.clock_ns;
      sched_lock_acquire(vp, pid);
      sched_->unregister_thread(t);
      t->finished = true;
      t->state.store(ThreadState::Done, std::memory_order_relaxed);
      --live_;
      live_events_.emplace_back(vp.clock_ns, -1);
      context_finalize(&t->ctx);
      StackPool::instance().release(t->stack);
      t->stack = Stack{};
      sim_stack_release(t->attr.stack_size);
      DFTH_TRACE_EMIT_AT(pid, obs::EvKind::Exit, vp.clock_ns, t->id, 0);
      DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::ExitSched, t->id, t->id, 0);
      DFTH_PROF_OVERHEAD(t->id, vp.clock_ns - exit_t0);
      // Finalize the span before the joiner wake below reads it.
      DFTH_PROF_EXIT(t->id, 0);
      loop_now_ns_ = vp.clock_ns;
      cur_proc_ = pid;
      if (t->joiner) {
        Tcb* j = t->joiner;
        t->joiner = nullptr;
        wake(j);
      }
      vp.running = nullptr;
      break;
    }

    case Ev::Block: {
      Tcb* t = vp.running;
      DFTH_CHECK(t->state.load(std::memory_order_relaxed) == ThreadState::Blocked);
      DFTH_TRACE_EMIT_AT(pid, obs::EvKind::Block, vp.clock_ns, t->id, 0);
      if (ev_guard_) ev_guard_->unlock();
      vp.running = nullptr;
      break;
    }

    case Ev::Yield:
    case Ev::QuotaPreempt:
    case Ev::OomPreempt: {
      Tcb* t = vp.running;
      const std::uint64_t pre_t0 = vp.clock_ns;
      vp.clock_ns += us_to_ns(opts_.cost.ctx_switch_us);
      vp.bd.thread_us += opts_.cost.ctx_switch_us;
      sched_lock_acquire(vp, pid);
      DFTH_PROF_OVERHEAD(t->id, vp.clock_ns - pre_t0);
      make_ready(vp, pid, t);
      if (ev_ == Ev::QuotaPreempt) ++stats_.quota_preemptions;
      DFTH_TRACE_EMIT_AT(pid, obs::EvKind::Preempt, vp.clock_ns, t->id,
                         ev_ == Ev::QuotaPreempt  ? obs::kPreemptQuota
                         : ev_ == Ev::OomPreempt ? obs::kPreemptOom
                                                 : obs::kPreemptYield);
      vp.running = nullptr;
      break;
    }

    case Ev::SyncPause:
      // The fiber keeps its processor; nothing to do — the clock advance
      // from apply_pending() already reordered it among the processors.
      break;

    case Ev::None:
      DFTH_CHECK(false);
  }
}

void SimEngine::dump_flight(const char* reason) {
  resil::FlightInfo info;
  info.reason = reason;
  info.engine = "sim";
  info.live_threads = live_;
  // Single host thread: the snapshot is exact, no locks involved.
  info.sched_state_consistent = true;
  for (int i = 0; i < static_cast<int>(procs_.size()); ++i) {
    info.lanes.push_back({i, procs_[static_cast<std::size_t>(i)].running});
  }
  info.all_tcbs = &all_tcbs_;
  info.sched = sched_.get();
  info.tracer = obs::tracer();
#if DFTH_REPLAY
  if (auto* rs = replay::active()) {
    if (rs->mode() == replay::Mode::Record) {
      rs->flush_partial();
      info.record_log = rs->path();
      info.replay_cmd = "tools/dfth-replay replay " + rs->path();
    } else {
      info.replay_log = rs->path();
      info.replay_position = rs->position_summary();
    }
  }
#endif
  resil::dump_flight_recorder(info, opts_.watchdog);
}

void SimEngine::report_deadlock() {
  dump_flight("SimEngine: deadlock — live threads but none runnable");
  DFTH_LOG_ERROR("dfth: DEADLOCK — %lld live threads, none runnable:",
                 static_cast<long long>(live_));
  int shown = 0;
  for (Tcb* t : all_tcbs_) {
    const auto st = t->state.load(std::memory_order_relaxed);
    if (st == ThreadState::Done) continue;
    DFTH_LOG_ERROR("  thread %llu state=%s%s",
                   static_cast<unsigned long long>(t->id), to_string(st),
                   t->is_dummy ? " (dummy)" : "");
    if (++shown >= 50) {
      DFTH_LOG_ERROR("  ...");
      break;
    }
  }
  DFTH_CHECK_MSG(false, "deadlock detected in simulation");
}

}  // namespace dfth
