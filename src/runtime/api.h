// Public API of the DFThreads runtime — the Pthreads-shaped surface the
// paper's benchmarks program against.
//
// Typical use:
//
//   dfth::RuntimeOptions opts;
//   opts.engine = dfth::EngineKind::Sim;
//   opts.sched = dfth::SchedKind::AsyncDf;
//   opts.nprocs = 8;
//   dfth::RunStats stats = dfth::run(opts, [] {
//     auto t = dfth::spawn([] { ...; return nullptr; });
//     dfth::join(t);
//   });
//
// Everything between run()'s braces executes on user-level threads; spawn/
// join/detach/yield plus the primitives in runtime/sync.h mirror
// pthread_create/join/detach/yield, mutexes, condition variables,
// semaphores and barriers. df_malloc/df_free are the tracked allocation
// entry points (the paper's modified malloc that maintains the memory quota
// and forks dummy threads); annotate_work/annotate_touch feed the
// simulator's virtual clock and locality model and cost nothing on the real
// engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <source_location>

#include "graph/recorder.h"
#include "resil/watchdog.h"
#include "runtime/cost_model.h"
#include "runtime/engine.h"
#include "runtime/run_stats.h"

namespace dfth {

namespace obs {
class Tracer;
class Profiler;
}

namespace resil {
struct FaultPlan;
}

struct RuntimeOptions {
  EngineKind engine = EngineKind::Sim;
  SchedKind sched = SchedKind::AsyncDf;
  int nprocs = 1;

  /// Default stack size for threads whose Attr does not request one.
  /// Solaris defaults to 1 MB; the paper's §4 item 3 reduces it to 8 KB.
  std::size_t default_stack_size = 1 << 20;

  /// Memory quota K for the space-efficient scheduler (§4 item 2).
  std::size_t mem_quota = 32 << 10;

  /// Seed for any scheduler randomness (work-stealing victim selection).
  std::uint64_t seed = 0x5eed;

  /// Processors per cluster ("SMP") for SchedKind::ClusteredAdf.
  int cluster_size = 4;

  /// Cost-model constants for the simulation engine.
  CostModel cost;

  /// Optional caller-owned computation-graph recorder (graph/recorder.h):
  /// when set, the run records its fork/join DAG with per-segment work into
  /// it, for graph/analysis.h. Adds overhead; off by default.
  Recorder* recorder = nullptr;

  /// Optional caller-owned trace session (obs/trace.h): when set (and the
  /// build has DFTH_TRACE), the engine records scheduler events and
  /// time-series samples into it for obs/export.h / tools/dfth-trace.
  obs::Tracer* tracer = nullptr;

  /// Optional caller-owned work/span profiling session (obs/profile.h):
  /// when set (and the build has DFTH_PROF), the engine measures work, span,
  /// burdened span and scheduler overhead, merges the summary into
  /// RunStats::profile, and keeps per-spawn-site attribution in the session
  /// for obs/export.h / tools/dfth-prof.
  obs::Profiler* profiler = nullptr;

  /// Optional caller-owned fault-injection plan (resil/faults.h): when set
  /// (and the build has DFTH_FAULTS), the engine arms the injector for the
  /// duration of run(), so the named resource-acquisition sites fail on the
  /// plan's deterministic schedule.
  const resil::FaultPlan* fault_plan = nullptr;

  /// Stall-watchdog deadlines and dump destination (resil/watchdog.h).
  /// Disabled by default.
  resil::WatchdogConfig watchdog;

  /// When non-empty (and the build has DFTH_REPLAY), record every
  /// nondeterministic scheduling/sync/fault decision of this run into a
  /// binary schedule log at this path. If the run aborts (DFTH_CHECK,
  /// watchdog kill), the in-flight log is flushed so the failure itself is
  /// replayable. Mutually exclusive with replay_path.
  std::string record_path;

  /// When non-empty (and the build has DFTH_REPLAY), drive this run from a
  /// previously recorded schedule log instead of live scheduling decisions.
  /// On EngineKind::Real the log must come from a matching Real run (same
  /// sched/nprocs/seed/quota) and is replayed decision-for-decision; on
  /// EngineKind::Sim any log is cross-replayed under virtual time. A log
  /// that recorded a fault plan re-arms the identical plan, overriding
  /// fault_plan.
  std::string replay_path;

  /// Free-form label (e.g. the app name) embedded in a recorded log's
  /// header so tools/dfth-replay can re-create the run. Truncated to 63
  /// chars.
  std::string record_tag;
};

/// Opaque thread handle (cheap to copy). Valid until the enclosing run()
/// returns.
class Thread {
 public:
  Thread() = default;
  bool valid() const { return tcb_ != nullptr; }
  std::uint64_t id() const;

  /// Internal: wraps an engine-owned control block. Library code only.
  explicit Thread(Tcb* tcb) : tcb_(tcb) {}

 private:
  friend void* join(Thread);
  friend void detach(Thread);
  Tcb* tcb_ = nullptr;
};

/// Runs `main_fn` as the main thread under the given options; returns when
/// all threads have exited. Not reentrant: one runtime at a time per process.
RunStats run(const RuntimeOptions& opts, const std::function<void()>& main_fn);

/// True between run() entry and exit (i.e., engine() != nullptr).
bool in_runtime();

/// Creates a thread executing `fn`; pthread_create equivalent. The defaulted
/// source_location captures the caller's file:line as the thread's spawn
/// site — the key the work/span profiler attributes critical-path time and
/// collapsed-stack work to.
Thread spawn(std::function<void*()> fn, const Attr& attr = {},
             std::source_location site = std::source_location::current());

/// Waits for `t` and returns its result; pthread_join equivalent.
void* join(Thread t);

/// Marks `t` detached; its resources are reclaimed at exit without a join.
void detach(Thread t);

/// Yields the processor back to the scheduler; pthread_yield equivalent.
void yield();

/// Id of the calling thread (0 outside the runtime).
std::uint64_t self_id();

// -- cooperative cancellation (threads/cancel.h) -------------------------------

/// True when the calling fiber's cancellation scope has fired (deadline
/// expired at a dispatch, or the owner cancelled explicitly). Fibers under a
/// deadline poll this at safe points — typically before spawning children —
/// and early-return; they must still reach their joins/barriers so peers
/// never deadlock. Always false outside any scope or outside run(). Under
/// record/replay each poll is a logged decision, so replay reproduces the
/// observed value even though the underlying read races with expiry.
bool cancel_requested();

/// Engine-clock nanoseconds: virtual time in Sim, steady wall time in Real,
/// steady wall time outside run(). The clock CancelToken::deadline_ns and
/// the sync timed-waits are measured against.
std::uint64_t now_ns();

// -- tracked allocation ------------------------------------------------------

/// Error-code channel for the fallible API variants. No exception ever
/// crosses a fiber boundary (a bad_alloc unwinding through a context switch
/// is unrecoverable), so resource exhaustion is reported by value.
enum class DfStatus : std::uint8_t {
  kOk = 0,
  kNoMem,       ///< heap exhausted after the engine's bounded OOM-preempt
                ///< retries and no other thread holds tracked memory: nothing
                ///< will ever free, the allocation can never succeed
  kTimedOut,    ///< a timed wait expired (reserved for callers layering on sync)
  kOverloaded,  ///< heap exhausted while other threads hold tracked bytes —
                ///< transient backpressure; retry after they free, or shed
                ///< load (the serving admission controller's reject signal)
};

const char* to_string(DfStatus status);

/// Allocates through the tracked heap, charging the calling thread's memory
/// quota. Under the space-efficient scheduler, an allocation larger than the
/// quota K first forks ceil(bytes/K) dummy threads as a binary tree (§4 item
/// 2); quota exhaustion preempts the calling thread. Usable outside run()
/// (plain tracked allocation).
///
/// On heap exhaustion the engine recovers AsyncDF-style before failing:
/// the fiber is preempted exactly as if its quota were exhausted (reinserted
/// leftmost-ready so threads earlier in the serial order can run and free
/// memory), the effective quota K shrinks, and the allocation is retried a
/// bounded number of times. Only when every retry fails does df_malloc
/// return nullptr (and df_try_malloc report DfStatus::kNoMem).
void* df_malloc(std::size_t bytes);

/// df_malloc with an explicit status out-param (may be null). Returns
/// nullptr iff *status is set to a non-kOk value.
///
/// Call-site audit (the seven paper apps, src/apps/): every app allocates
/// through df_malloc or TrackedAllocator and treats failure as fatal —
/// correct for a batch kernel, where by the time the tracked heap is
/// exhausted there is nothing to shed. The kNoMem/kOverloaded distinction
/// is consumed one layer up: the serving admission controller
/// (src/serve/admission.h) sizes per-endpoint budgets so handlers never
/// see exhaustion, and serve::Server maps a mid-request kOverloaded to a
/// shed + retry-after rather than a handler crash. App code should keep
/// calling df_malloc; only long-lived callers that can *reject work*
/// should switch to df_try_malloc and branch on the status.
void* df_try_malloc(std::size_t bytes, DfStatus* status = nullptr);

void df_free(void* p);

/// std::allocator adaptor over df_malloc, for containers in benchmarks.
template <typename T>
struct TrackedAllocator {
  using value_type = T;
  TrackedAllocator() = default;
  template <typename U>
  TrackedAllocator(const TrackedAllocator<U>&) {}
  T* allocate(std::size_t n) {
    // The Allocator contract requires a throw on failure: returning nullptr
    // sends std::vector straight into placement-new on address zero.
    if (auto* p = static_cast<T*>(df_malloc(n * sizeof(T)))) return p;
    throw std::bad_alloc();
  }
  void deallocate(T* p, std::size_t) { df_free(p); }
  bool operator==(const TrackedAllocator&) const { return true; }
};

// -- race-detector annotations -------------------------------------------------

/// Declares that the calling thread reads/writes [p, p+bytes) of df_malloc'd
/// memory. The happens-before race detector (analyze/race_detector.h) checks
/// the access against its shadow cells and reports when it is unordered with
/// a prior access from another logical thread — on *any* schedule, not just
/// the one that ran. `site` must be a string with static storage duration
/// naming the access site (it is kept by pointer in reports). Compiled to
/// inline no-ops unless the build sets -DDFTH_RACE=ON.
#if DFTH_RACE
void df_read(const void* p, std::size_t bytes, const char* site);
void df_write(const void* p, std::size_t bytes, const char* site);
#else
inline void df_read(const void*, std::size_t, const char*) {}
inline void df_write(const void*, std::size_t, const char*) {}
#endif

// -- simulator annotations -----------------------------------------------------

/// Accrues `ops` units of computation (≈ flops) to the calling thread's
/// virtual clock. No-op on the real engine and outside run().
void annotate_work(std::uint64_t ops);

/// Reports that the calling thread touched the given data blocks; drives the
/// per-processor LRU locality model (volume-rendering granularity study).
void annotate_touch(const std::uint32_t* block_ids, std::size_t count);

// -- thread-specific data (pthread_key_t equivalent) ---------------------------

/// Allocates a new TLS key, valid process-wide.
std::uint32_t tls_create_key();
void tls_set(std::uint32_t key, void* value);
void* tls_get(std::uint32_t key);

}  // namespace dfth
