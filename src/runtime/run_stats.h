// Per-run statistics returned by dfth::run() — the raw material for every
// table and figure in the paper's evaluation.
#pragma once

#include <cstdint>

#include "core/scheduler.h"

namespace dfth {

enum class EngineKind { Sim, Real };
const char* to_string(EngineKind kind);

/// Virtual-time accounting by category (SimEngine only); the paper's Figure
/// 6 presents exactly this kind of execution-time profile.
struct Breakdown {
  double work_us = 0;        ///< useful computation (incl. pressure slowdown)
  double thread_us = 0;      ///< create/join/exit/context-switch costs
  double mem_us = 0;         ///< malloc/free, fresh pages, stack allocation
  double sync_us = 0;        ///< mutex/semaphore/condvar/barrier operations
  double sched_us = 0;       ///< ready-queue ops + scheduler-lock contention
  double idle_us = 0;        ///< processors with nothing eligible to run

  /// The categories as an iterable list, so consumers (Figure 6 table, JSON
  /// export, totals) cannot desync from the fields above.
  static constexpr int kNumCategories = 6;
  static const char* category_name(int i) {
    constexpr const char* names[kNumCategories] = {
        "work", "thread", "mem", "sync", "sched", "idle"};
    return (i >= 0 && i < kNumCategories) ? names[i] : "?";
  }
  double category(int i) const {
    const double vals[kNumCategories] = {work_us, thread_us, mem_us,
                                         sync_us, sched_us,  idle_us};
    return (i >= 0 && i < kNumCategories) ? vals[i] : 0;
  }
  double& category(int i) {
    double* vals[kNumCategories] = {&work_us, &thread_us, &mem_us,
                                    &sync_us, &sched_us,  &idle_us};
    return *vals[(i >= 0 && i < kNumCategories) ? i : 0];
  }

  double total_us() const {
    double t = 0;
    for (int i = 0; i < kNumCategories; ++i) t += category(i);
    return t;
  }
};

/// Work/span summary from the parallelism profiler (src/obs/profile.h).
/// Plain integers so RunStats stays a value type with no obs dependency;
/// populated only when a Profiler was installed for the run (enabled=true).
///
/// Invariants the profiler maintains (and tests/obs/profile_test.cpp checks):
///   span_ns          <= work_ns            (the critical path is part of T1)
///   span_ns          <= burdened_span_ns   (burden only adds)
///   work_ns + overhead_ns == busy time     (everything the lanes did except
///                                           sitting idle)
struct ProfileStats {
  bool enabled = false;
  std::uint64_t work_ns = 0;           ///< T1: total useful fiber time
  std::uint64_t span_ns = 0;           ///< T_inf: critical path, pure charges
  std::uint64_t burdened_span_ns = 0;  ///< T_inf + per-edge scheduler burden
  std::uint64_t overhead_ns = 0;       ///< dispatch/fork/exit/steal/lock time
  std::uint64_t fibers = 0;            ///< fibers seen (incl. main + dummies)

  double parallelism() const {
    return span_ns ? static_cast<double>(work_ns) / static_cast<double>(span_ns)
                   : 0.0;
  }
  /// Greedy-scheduler lower bound on T_p: both busy/p and span are floors.
  double predict_lo_ns(int p) const {
    const double busy = static_cast<double>(work_ns + overhead_ns);
    const double sp = static_cast<double>(span_ns);
    return p > 0 ? (busy / p > sp ? busy / p : sp) : 0.0;
  }
  /// Brent-style upper bound with scheduling burden: busy/p + burdened span.
  double predict_hi_ns(int p) const {
    const double busy = static_cast<double>(work_ns + overhead_ns);
    return p > 0 ? busy / p + static_cast<double>(burdened_span_ns) : 0.0;
  }
};

struct RunStats {
  // Configuration echo.
  EngineKind engine = EngineKind::Sim;
  SchedKind sched = SchedKind::AsyncDf;
  int nprocs = 1;

  // Thread accounting.
  std::uint64_t threads_created = 0;   ///< includes the main thread
  std::uint64_t dummy_threads = 0;     ///< δ no-op threads for large allocs
  std::int64_t max_live_threads = 0;   ///< peak simultaneously-active threads
  std::uint64_t dispatches = 0;
  std::uint64_t quota_preemptions = 0;
  std::uint64_t steals = 0;            ///< work stealing only

  // Resilience (degradation events survived; see src/resil/).
  std::uint64_t oom_preemptions = 0;   ///< heap exhaustion → AsyncDF-style preempt
  std::uint64_t inline_runs = 0;       ///< stack/ctx failure → child ran inline
  std::uint64_t sync_timeouts = 0;     ///< timed waits that expired
  std::uint64_t faults_injected = 0;   ///< resil injector failures this run
  std::uint64_t faults_recovered = 0;  ///< injected failures absorbed this run
  std::uint64_t deadline_expirations = 0;  ///< cancel tokens fired at dispatch

  // Space (bytes).
  std::int64_t heap_peak = 0;          ///< the paper's space metric
  std::int64_t stack_peak = 0;         ///< simulated stack footprint peak
  std::uint64_t stacks_fresh = 0;
  std::uint64_t stacks_reused = 0;
  /// Largest stack usage any single fiber actually touched (watermark scan
  /// on release). Nonzero only in -DDFTH_STACK_USAGE builds;
  /// tools/stack_bound.py compares it against the static worst-case bound.
  std::int64_t stack_high_water = 0;

  // Time.
  double elapsed_us = 0;  ///< virtual time (Sim) or wall-clock (Real)
  Breakdown breakdown;    ///< Sim only

  // Locality model.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  // Work/span profile (only when a Profiler was installed; see src/obs/).
  ProfileStats profile;
};

}  // namespace dfth
