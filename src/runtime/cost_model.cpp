#include "runtime/cost_model.h"

#include <algorithm>
#include <cmath>

namespace dfth {

double CostModel::stack_fresh_us(std::size_t bytes) const {
  // Two calibration points from the paper: (8 KB, 200 µs) and (1 MB, 260 µs).
  // Interpolate on log2(size) — the cost is dominated by a constant mmap and
  // grows slowly with the mapping size.
  constexpr double kLo = 13.0;  // log2(8 KB)
  constexpr double kHi = 20.0;  // log2(1 MB)
  const double lg = std::log2(static_cast<double>(std::max<std::size_t>(bytes, 1)));
  const double t = std::clamp((lg - kLo) / (kHi - kLo), 0.0, 2.0);
  return stack_fresh_8k_us + t * (stack_fresh_1m_us - stack_fresh_8k_us);
}

double CostModel::pressure(std::int64_t live_bytes) const {
  if (live_bytes <= pressure_knee_bytes) return 1.0;
  const double span =
      static_cast<double>(pressure_saturate_bytes - pressure_knee_bytes);
  const double t = std::min(
      1.0, static_cast<double>(live_bytes - pressure_knee_bytes) / span);
  return 1.0 + t * (pressure_max - 1.0);
}

double CostModel::malloc_us(std::size_t bytes, std::int64_t fresh_bytes) const {
  (void)bytes;
  const double fresh_pages =
      static_cast<double>(fresh_bytes) / static_cast<double>(page_bytes);
  return malloc_base_us + fresh_pages * fresh_page_us;
}

}  // namespace dfth
