// Virtual-time cost model for the SMP simulation engine.
//
// The host for this reproduction has a single CPU, so the paper's speedup
// and time-breakdown measurements cannot be taken on real hardware; instead
// SimEngine executes the benchmarks' real code under a discrete-event model
// of a p-processor SMP. This struct holds every constant of that model,
// calibrated to the paper's Figure 3 (167 MHz UltraSPARC, Solaris 2.5):
//
//   * unbound thread create 20.5 µs (their headline number; "over 3400
//     cycles"), bound create an order of magnitude higher;
//   * fresh stack allocation 200 µs for an 8 KB stack rising to 260 µs for
//     1 MB (Figure 3 caption), cached stacks nearly free;
//   * semaphore pair synchronization 19 µs including one context switch.
//
// Two synthetic components stand in for effects the paper observes but does
// not tabulate (both documented in DESIGN.md):
//   * memory pressure: beyond `pressure_knee_bytes` of live heap, work slows
//     linearly up to `pressure_max` at `pressure_saturate_bytes` — modelling
//     the TLB/page misses and memory-allocation system calls that Figure 6
//     shows dominating the FIFO schedule;
//   * a per-processor LRU block cache driving annotate_touch() costs —
//     modelling the L2 locality that Figure 11's granularity sweep exposes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dfth {

struct CostModel {
  // -- thread operations (µs) ----------------------------------------------
  double create_unbound_us = 20.5;
  double create_bound_us = 170.0;
  double join_us = 5.9;
  double exit_us = 4.0;
  /// Calibrated from Fig 3's semaphore pair-sync (19 µs, "includes the time
  /// for one context switch"): 19 ≈ 2 sync ops (4.4) + block (8) + switch.
  double ctx_switch_us = 7.0;
  double sync_op_us = 2.2;    ///< uncontended mutex/semaphore operation
  double block_us = 8.0;      ///< blocking on a contended sync object
  double sem_sync_us = 19.0;  ///< Fig 3's two-thread semaphore pair sync
                              ///< (~ block + context switch; informational)
  double sched_op_us = 1.0;   ///< one ready-queue operation under the lock

  // -- stacks (µs) -----------------------------------------------------------
  double stack_pooled_us = 2.0;
  double stack_fresh_8k_us = 200.0;
  double stack_fresh_1m_us = 260.0;

  // -- heap (µs) ---------------------------------------------------------------
  double malloc_base_us = 0.6;
  double free_base_us = 0.3;
  double fresh_page_us = 2.0;  ///< zero-fill + map cost per fresh page
  std::size_t page_bytes = 8192;  ///< UltraSPARC base page size

  // -- computation ---------------------------------------------------------
  /// App-defined work units (≈ flops) retired per µs. 100 ops/µs ≈ the
  /// 167 MHz UltraSPARC sustaining ~0.6 flop/cycle on blocked kernels.
  double ops_per_us = 100.0;

  // -- memory pressure (synthetic; see header comment) -----------------------
  // The knee reflects the target machine's small TLB reach and 512 KB L2:
  // working sets beyond a few MB start missing hard; by a couple hundred MB
  // (the FIFO schedule's live footprint on the 1024² multiply) every access
  // pays, saturating at pressure_max.
  std::int64_t pressure_knee_bytes = 8LL << 20;
  std::int64_t pressure_saturate_bytes = 256LL << 20;
  double pressure_max = 3.0;

  /// Resident (touched) bytes attributed to one thread stack: stacks are
  /// reserved lazily, so a 1 MB stack dirties at most this many pages.
  /// Touched stack bytes count toward the pressure footprint.
  std::size_t stack_touched_cap = 64 << 10;

  // -- locality cache (synthetic; see header comment) -------------------------
  std::size_t cache_blocks = 64;  ///< ≈ 512 KB L2 / 8 KB blocks
  double cache_hit_us = 0.02;
  double cache_miss_us = 12.0;

  // -- derived helpers -------------------------------------------------------
  double work_us(std::uint64_t ops) const {
    return static_cast<double>(ops) / ops_per_us;
  }

  /// Fresh-stack cost, log-interpolated between the two calibrated points.
  double stack_fresh_us(std::size_t bytes) const;

  /// Work-slowdown multiplier at `live_bytes` of live heap (>= 1.0).
  double pressure(std::int64_t live_bytes) const;

  /// µs for an allocation of `bytes`, of which `fresh_bytes` grew the peak.
  double malloc_us(std::size_t bytes, std::int64_t fresh_bytes) const;
};

/// Converts µs of model time to the engine's integer nanosecond clock.
inline std::uint64_t us_to_ns(double us) {
  return static_cast<std::uint64_t>(us * 1e3 + 0.5);
}

}  // namespace dfth
