#include "runtime/api.h"

#include <atomic>

#include "graph/recorder.h"
#if DFTH_VALIDATE
#include "analyze/auditor.h"
#endif
#include "analyze/race_hooks.h"
#include "resil/faults.h"
#include "runtime/real_engine.h"
#include "runtime/sim_engine.h"
#include "space/tracked_heap.h"
#include "util/check.h"
#include "util/log.h"
#if DFTH_REPLAY
#include <cstring>

#include "replay/session.h"
#endif
#include <chrono>

namespace dfth {
namespace {

Engine* g_engine = nullptr;

#if DFTH_REPLAY
// Builds the record or replay session `opts` asks for (nullptr when neither
// path is set), rejecting malformed logs and header/option mismatches with a
// specific diagnostic before any engine state exists. On replay the log's
// embedded fault plan replaces opts->fault_plan — the recorded failure
// schedule is part of the schedule being reproduced.
std::unique_ptr<replay::Session> open_replay_session(RuntimeOptions* opts) {
  if (opts->record_path.empty() && opts->replay_path.empty()) return nullptr;
  DFTH_CHECK_MSG(opts->record_path.empty() || opts->replay_path.empty(),
                 "record_path and replay_path are mutually exclusive");

  if (!opts->replay_path.empty()) {
    replay::LoadedLog log;
    std::string error;
    if (!replay::load_log(opts->replay_path, &log, &error)) {
      DFTH_LOG_ERROR("replay: %s", error.c_str());
      DFTH_CHECK_MSG(false, "replay log rejected — see diagnostic above");
    }
    const replay::Mode mode = opts->engine == EngineKind::Real
                                  ? replay::Mode::Replay
                                  : replay::Mode::CrossReplay;
    if (mode == replay::Mode::Replay) {
      // Decision-for-decision pinning only makes sense when the run being
      // driven is shaped exactly like the recorded one.
      const replay::LogHeader& h = log.header;
      const bool match =
          h.engine == static_cast<std::uint32_t>(EngineKind::Real) &&
          h.sched == static_cast<std::uint32_t>(opts->sched) &&
          h.nprocs == static_cast<std::uint32_t>(opts->nprocs) &&
          h.cluster_size == static_cast<std::uint32_t>(opts->cluster_size) &&
          h.seed == opts->seed && h.mem_quota == opts->mem_quota &&
          h.default_stack_size == opts->default_stack_size;
      if (!match) {
        DFTH_LOG_ERROR(
            "replay: '%s' was recorded with engine=%u sched=%u nprocs=%u "
            "cluster=%u seed=%llu quota=%llu stack=%llu, but this run asks "
            "for sched=%u nprocs=%u cluster=%u seed=%llu quota=%llu "
            "stack=%llu — pass identical options (or EngineKind::Sim for a "
            "cross-replay)",
            opts->replay_path.c_str(), h.engine, h.sched, h.nprocs,
            h.cluster_size, static_cast<unsigned long long>(h.seed),
            static_cast<unsigned long long>(h.mem_quota),
            static_cast<unsigned long long>(h.default_stack_size),
            static_cast<std::uint32_t>(opts->sched),
            static_cast<std::uint32_t>(opts->nprocs),
            static_cast<std::uint32_t>(opts->cluster_size),
            static_cast<unsigned long long>(opts->seed),
            static_cast<unsigned long long>(opts->mem_quota),
            static_cast<unsigned long long>(opts->default_stack_size));
        DFTH_CHECK_MSG(false, "replay log does not match the run's options");
      }
      if (log.header.clean_end == 0) {
        DFTH_LOG_WARN(
            "replay: '%s' is an abort-time partial log (%llu events) — the "
            "run will free-run once the log is exhausted",
            opts->replay_path.c_str(),
            static_cast<unsigned long long>(log.header.event_count));
      }
    }
    auto s = replay::Session::start_replay(std::move(log), mode,
                                           opts->replay_path);
    opts->fault_plan = s->embedded_plan();
    return s;
  }

  replay::LogHeader h{};
  h.engine = static_cast<std::uint32_t>(opts->engine);
  h.sched = static_cast<std::uint32_t>(opts->sched);
  h.nprocs = static_cast<std::uint32_t>(opts->nprocs);
  h.cluster_size = static_cast<std::uint32_t>(opts->cluster_size);
  h.seed = opts->seed;
  h.mem_quota = opts->mem_quota;
  h.default_stack_size = opts->default_stack_size;
  std::strncpy(h.tag, opts->record_tag.c_str(), sizeof(h.tag) - 1);
  if (opts->fault_plan != nullptr) {
    static_assert(resil::kNumFaultSites <= replay::kMaxFaultSitesWire,
                  "widen LogHeader::fault_sites for the new fault site");
    h.has_fault_plan = 1;
    h.fault_seed = opts->fault_plan->seed;
    for (int i = 0; i < resil::kNumFaultSites; ++i) {
      const resil::SiteSpec& spec = opts->fault_plan->sites[i];
      h.fault_sites[i].every_nth = spec.every_nth;
      h.fault_sites[i].probability = spec.probability;
      h.fault_sites[i].skip_first = spec.skip_first;
      h.fault_sites[i].max_failures = spec.max_failures;
    }
  }
  // One writer lane per kernel worker plus the shared external lane (host,
  // supervisor, bound threads). The simulator runs on one host thread.
  const int lanes =
      (opts->engine == EngineKind::Real ? opts->nprocs : 1) + 1;
  return replay::Session::start_record(h, lanes, opts->record_path);
}
#endif  // DFTH_REPLAY

}  // namespace


// Deliberately not inlined (see engine.h): a fiber resumed on a different
// kernel thread must re-read the engine/current state through a call.
__attribute__((noinline)) Engine* engine() { return g_engine; }

namespace detail {
void set_engine(Engine* e) { g_engine = e; }
}  // namespace detail

bool in_runtime() { return engine() != nullptr; }

std::uint64_t Thread::id() const { return tcb_ ? tcb_->id : 0; }

RunStats run(const RuntimeOptions& opts, const std::function<void()>& main_fn) {
  DFTH_CHECK_MSG(!in_runtime(), "dfth::run is not reentrant");
  DFTH_CHECK(opts.nprocs >= 1);

  // The effective options may differ from the caller's: a replayed log's
  // embedded fault plan overrides fault_plan so the recorded failure
  // schedule reproduces.
  RuntimeOptions effective = opts;
#if DFTH_REPLAY
  std::unique_ptr<replay::Session> session = open_replay_session(&effective);
  // Installed before engine construction: RealEngine's constructor consults
  // the active session to substitute the schedule-pinned ReplayScheduler.
  replay::set_active(session.get());
#else
  DFTH_CHECK_MSG(opts.record_path.empty() && opts.replay_path.empty(),
                 "record_path/replay_path set but the build has -DDFTH_REPLAY=OFF");
#endif

  std::unique_ptr<Engine> eng;
  if (effective.engine == EngineKind::Sim) {
    eng = std::make_unique<SimEngine>(effective);
  } else {
    eng = std::make_unique<RealEngine>(effective);
  }

  if (effective.recorder) detail::set_recorder(effective.recorder);

  // Fiber ids restart per run, so stale happens-before state from a prior
  // run must not leak into this one (accumulated reports are kept).
  DFTH_RACE_BEGIN_RUN();

  detail::set_engine(eng.get());
  RunStats stats = eng->run(main_fn);
  detail::set_engine(nullptr);
  detail::set_recorder(nullptr);
#if DFTH_REPLAY
  if (session) {
    std::string error;
    if (!session->finish_record(/*clean=*/true, &error)) {
      DFTH_LOG_ERROR("replay: %s", error.c_str());
      DFTH_CHECK_MSG(false, "failed to write the schedule log");
    }
    replay::set_active(nullptr);
  }
#endif
  return stats;
}

Thread spawn(std::function<void*()> fn, const Attr& attr,
             std::source_location site) {
  Engine* e = engine();
  DFTH_CHECK_MSG(e, "spawn outside dfth::run");
  // Graph recording happens inside the engine: under a child-runs-first
  // policy the child may execute to completion before this call returns, so
  // its start must be recorded before the scheduling decision.
  Tcb* child = e->spawn(std::move(fn), attr, /*is_dummy=*/false,
                        site.file_name(), static_cast<int>(site.line()));
  return Thread(child);
}

void* join(Thread t) {
  Engine* e = engine();
  DFTH_CHECK_MSG(e, "join outside dfth::run");
  DFTH_CHECK_MSG(t.valid(), "join of invalid thread handle");
  void* result = e->join(t.tcb_);
  // Exit→joiner edge: everything the child (and its whole joined subtree)
  // did happens-before the code after this join.
  DFTH_RACE_JOIN(e->current(), t.tcb_);
  if (Recorder* rec = active_recorder()) {
    rec->on_join(t.tcb_->id, e->current() ? e->current()->id : 0);
  }
  return result;
}

void detach(Thread t) {
  Engine* e = engine();
  DFTH_CHECK_MSG(e, "detach outside dfth::run");
  DFTH_CHECK_MSG(t.valid(), "detach of invalid thread handle");
  e->detach(t.tcb_);
}

void yield() {
  if (Engine* e = engine()) e->yield();
}

std::uint64_t self_id() {
  Engine* e = engine();
  if (!e) return 0;
  Tcb* cur = e->current();
  return cur ? cur->id : 0;
}

bool cancel_requested() {
  Engine* e = engine();
  if (!e) return false;
  Tcb* cur = e->current();
  if (!cur || cur->cancel == nullptr) return false;
#if DFTH_REPLAY
  if (auto* rs = replay::active()) {
    const std::uint64_t actor = replay::self_actor();
    if (rs->mode() == replay::Mode::Replay) {
      // Pinned replay: the recorded observation wins over the live flag.
      // The poll races with dispatch-time expiry on another lane, so the
      // live read can land on either side of the recorded CancelFire;
      // returning the logged value keeps control flow (and therefore the
      // spawn structure downstream of this branch) identical.
      if (rs->gate(actor) == replay::Session::Turn::Mine) {
        std::uint64_t observed = 0;
        if (rs->head_is(replay::EvKind::CancelCheck, actor, &observed)) {
          rs->commit(replay::EvKind::CancelCheck, actor, observed, 0);
          return observed != 0;
        }
        // Our turn but the log expected a different event here: commit the
        // live value so the session diagnoses the divergence and aborts.
        const std::uint64_t live = cur->cancel->is_cancelled() ? 1 : 0;
        rs->commit(replay::EvKind::CancelCheck, actor, live, 0);
        return live != 0;
      }
      // Log exhausted (abort-time partial log): free-run on the live flag.
      return cur->cancel->is_cancelled();
    }
    // Record: log what this poll observed. CrossReplay: commit() ignores
    // the event — virtual time makes the Sim outcome deterministic anyway.
    const bool v = cur->cancel->is_cancelled();
    rs->commit(replay::EvKind::CancelCheck, actor, v ? 1 : 0, 0);
    return v;
  }
#endif
  return cur->cancel->is_cancelled();
}

std::uint64_t now_ns() {
  if (Engine* e = engine()) {
#if DFTH_REPLAY
    // The wall clock is the archetypal raced read: serve-layer control flow
    // (deadline checks, arrival pacing, retry due times) branches on it.
    // Pin it so strict Real replay re-takes every recorded branch;
    // observe_u64 is a passthrough on Sim (virtual time is deterministic)
    // and when no session is installed.
    return replay::observe_u64(replay::kObsClockNs, e->now_ns());
#else
    return e->now_ns();
#endif
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

// Forks `count` dummy (no-op) threads as a binary tree — the paper forks the
// δ threads "as a binary tree instead of a δ-way fork" because the Pthreads
// interface only has a binary fork. The tree node itself is one of the
// `count` dummies.
Thread spawn_dummy_subtree(std::uint64_t count) {
  Attr attr;
  attr.stack_size = 8 << 10;  // dummies take the minimal stack
  Engine* e = engine();
  Tcb* tcb = e->spawn(
      [count]() -> void* {
        const std::uint64_t rest = count - 1;
        if (rest > 0) {
          const std::uint64_t left = rest / 2;
          const std::uint64_t right = rest - left;
          Thread a, b;
          if (left > 0) a = spawn_dummy_subtree(left);
          if (right > 0) b = spawn_dummy_subtree(right);
          if (left > 0) join(a);
          if (right > 0) join(b);
        }
        return nullptr;
      },
      attr, /*is_dummy=*/true, "<dummy>", 0);
  return Thread(tcb);
}

void insert_dummy_threads(std::uint64_t count) {
  if (count == 0) return;
  Thread root = spawn_dummy_subtree(count);
  join(root);
}

}  // namespace

const char* to_string(DfStatus status) {
  switch (status) {
    case DfStatus::kOk: return "ok";
    case DfStatus::kNoMem: return "no-mem";
    case DfStatus::kTimedOut: return "timed-out";
    case DfStatus::kOverloaded: return "overloaded";
  }
  return "?";
}

void* df_malloc(std::size_t bytes) { return df_try_malloc(bytes, nullptr); }

void* df_try_malloc(std::size_t bytes, DfStatus* status) {
  Engine* e = engine();
  if (e && e->uses_alloc_quota()) {
    const std::size_t quota = e->quota_bytes();
    if (quota > 0 && bytes > quota) {
      // §4 item 2: "If a thread contains an instruction that allocates
      // m > K bytes, δ dummy threads are inserted in parallel by the
      // library before the allocation, where δ is proportional to m/K."
      insert_dummy_threads((bytes + quota - 1) / quota);
    }
  }
#if DFTH_VALIDATE
  // Audited after the dummy-tree insertion so the δ credit those dummies
  // earn at registration is visible to the oversized-allocation check.
  if (e && e->uses_alloc_quota()) {
    if (analyze::InvariantAuditor* aud = analyze::active_auditor()) {
      aud->on_alloc(e->current(), bytes, e->quota_bytes());
    }
  }
#endif
  std::int64_t fresh = 0;
  bool injected = false;
  void* p = TrackedHeap::instance().allocate_ex(bytes, &fresh,
                                                /*probe_faults=*/true, &injected);
  // OOM recovery. Retries skip the dummy-tree/auditor preamble above: the δ
  // credit was already granted for this allocation, and re-auditing would
  // double-count it. Each failed attempt asks the engine to recover
  // (preempt AsyncDF-style, shrink the effective quota, back off); the
  // engine bounds the attempts and we surface kNoMem once it gives up.
  // Retries also skip the fault-site probe: one allocation request is one
  // site evaluation, so an injected failure is transient by construction —
  // re-probing let an aggressive plan fail every bounded retry and surface
  // kNoMem into code that treats allocation as infallible.
  for (int attempt = 0; p == nullptr; ++attempt) {
    if (e == nullptr || !e->on_alloc_failed(bytes, attempt)) {
      // Backpressure vs. terminal failure: while other threads hold tracked
      // bytes, their frees can make a retry succeed — that is kOverloaded,
      // the admission controller's shed signal. Only an empty tracked heap
      // (or no engine to preempt through) means the allocation can never
      // succeed and the caller gets terminal kNoMem.
      if (status) {
        *status = (e != nullptr && TrackedHeap::instance().live_bytes() > 0)
                      ? DfStatus::kOverloaded
                      : DfStatus::kNoMem;
      }
      return nullptr;
    }
    p = TrackedHeap::instance().allocate_ex(bytes, &fresh,
                                            /*probe_faults=*/false);
  }
  if (injected) DFTH_FAULT_RECOVERED(resil::FaultSite::kHeapAlloc);
  if (e) {
    if (Tcb* cur = e->current()) {
      if (cur->cancel != nullptr && cur->cancel->alloc_charge != nullptr) {
        cur->cancel->alloc_charge->fetch_add(
            static_cast<std::int64_t>(TrackedHeap::allocated_size(p)),
            std::memory_order_relaxed);
      }
    }
    e->on_alloc(bytes, fresh);  // may quota-preempt the calling thread
  }
  if (Recorder* rec = active_recorder()) {
    rec->on_alloc(self_id(), static_cast<std::int64_t>(bytes));
  }
  if (status) *status = DfStatus::kOk;
  return p;
}

void df_free(void* p) {
  if (!p) return;
  const std::size_t bytes = TrackedHeap::allocated_size(p);
  TrackedHeap::instance().deallocate(p);
  if (Engine* e = engine()) {
    if (Tcb* cur = e->current()) {
      if (cur->cancel != nullptr && cur->cancel->alloc_charge != nullptr) {
        cur->cancel->alloc_charge->fetch_sub(static_cast<std::int64_t>(bytes),
                                             std::memory_order_relaxed);
      }
    }
    e->on_free(bytes);
  }
  if (Recorder* rec = active_recorder()) {
    rec->on_alloc(self_id(), -static_cast<std::int64_t>(bytes));
  }
}

#if DFTH_RACE
void df_read(const void* p, std::size_t bytes, const char* site) {
  Engine* e = engine();
  if (!e) return;
  if (Tcb* cur = e->current()) {
    analyze::RaceDetector::instance().on_read(cur, p, bytes, site);
  }
}

void df_write(const void* p, std::size_t bytes, const char* site) {
  Engine* e = engine();
  if (!e) return;
  if (Tcb* cur = e->current()) {
    analyze::RaceDetector::instance().on_write(cur, p, bytes, site);
  }
}
#endif

void annotate_work(std::uint64_t ops) {
  if (ops == 0) return;
  if (Engine* e = engine()) e->add_work(ops);
  if (Recorder* rec = active_recorder()) rec->on_work(self_id(), ops);
}

void annotate_touch(const std::uint32_t* block_ids, std::size_t count) {
  if (count == 0) return;
  if (Engine* e = engine()) e->touch(block_ids, count);
}

namespace {
std::atomic<std::uint32_t> g_next_tls_key{1};
}

std::uint32_t tls_create_key() {
  return g_next_tls_key.fetch_add(1, std::memory_order_relaxed);
}

void tls_set(std::uint32_t key, void* value) {
  Engine* e = engine();
  DFTH_CHECK_MSG(e && e->current(), "tls_set outside a thread");
  auto& tls = e->current()->tls;
  if (tls.size() <= key) tls.resize(key + 1, nullptr);
  tls[key] = value;
}

void* tls_get(std::uint32_t key) {
  Engine* e = engine();
  DFTH_CHECK_MSG(e && e->current(), "tls_get outside a thread");
  const auto& tls = e->current()->tls;
  return key < tls.size() ? tls[key] : nullptr;
}

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::Sim: return "sim";
    case EngineKind::Real: return "real";
  }
  return "?";
}

}  // namespace dfth
