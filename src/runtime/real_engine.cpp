#include "runtime/real_engine.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "analyze/race_hooks.h"
#include "core/worksteal_sched.h"
#include "obs/counters.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "replay/hooks.h"
#include "replay/log.h"
#include "resil/faults.h"
#include "resil/watchdog.h"
#include "space/tracked_heap.h"
#include "util/check.h"
#include "util/timer.h"

#if DFTH_REPLAY
#include "replay/replay_sched.h"
#endif

#if DFTH_VALIDATE
#include "analyze/auditor.h"
#endif

namespace dfth {
namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
constexpr std::size_t kRealStackFloor = 64 << 10;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local void* tl_worker = nullptr;  // RealEngine::Worker*
thread_local Tcb* tl_bound = nullptr;    // bound thread's own Tcb

// Thread-id allocation goes through the replay session when one is active:
// the raw atomic's assignment order is itself a recorded (and replayed)
// decision, so a replayed run names every fiber identically.
std::uint64_t take_tid(std::atomic<std::uint64_t>& next) {
#if DFTH_REPLAY
  if (auto* rs = ::dfth::replay::active()) {
    return rs->alloc_tid(next, ::dfth::replay::self_actor());
  }
#endif
  return next++;
}

}  // namespace

// Both accessors are noinline on purpose: fibers migrate between kernel
// threads, and a thread-local read cached across a context switch would
// observe another worker's state (see engine.h).
__attribute__((noinline)) RealEngine::Worker* RealEngine::this_worker() {
  return static_cast<Worker*>(tl_worker);
}

__attribute__((noinline)) Tcb* RealEngine::current() {
  if (Worker* w = this_worker()) return w->current;
  return tl_bound;
}

RealEngine::RealEngine(const RuntimeOptions& opts) : opts_(opts) {
  DFTH_CHECK(opts_.nprocs >= 1);
#if DFTH_REPLAY
  if (auto* rs = replay::active();
      rs != nullptr && rs->mode() == replay::Mode::Replay) {
    // Schedule-pinned replay: serve the logged dispatch outcomes instead of
    // re-running the recorded policy (see replay/replay_sched.h for why the
    // policy itself cannot be replayed through).
    sched_ = std::make_unique<replay::ReplayScheduler>(
        rs, opts_.sched, replay::ReplayScheduler::Pinning::Pin);
  }
#endif
  if (!sched_) {
    sched_ = make_scheduler(opts_.sched, opts_.nprocs, opts_.seed,
                            opts_.cluster_size);
  }
  eff_quota_.store(opts_.mem_quota, std::memory_order_relaxed);
  stats_.engine = EngineKind::Real;
  stats_.sched = opts_.sched;
  stats_.nprocs = opts_.nprocs;
}

RealEngine::~RealEngine() {
  for (Tcb* t : all_tcbs_) {
    if (t->stack) StackPool::instance().release(t->stack);
    context_destroy(&t->ctx);
    delete t;
  }
}

Tcb* RealEngine::make_tcb(std::function<void*()> fn, const Attr& attr, bool is_dummy) {
  Tcb* t = new Tcb(take_tid(next_tid_));
  t->attr = attr;
  if (t->attr.stack_size == 0) t->attr.stack_size = opts_.default_stack_size;
  DFTH_CHECK(t->attr.priority >= 0 && t->attr.priority < kNumPriorities);
  t->entry = std::move(fn);
  t->is_dummy = is_dummy;
  t->detached = attr.detached;
  if (!t->attr.bound) {
    // Real stacks honor the requested size but keep a floor under the
    // benchmarks' serial base cases.
    t->stack = StackPool::instance().acquire(std::max(t->attr.stack_size, kRealStackFloor));
    if (t->stack && DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kCtxCreate)) {
      StackPool::instance().release(t->stack);
      t->stack = Stack{};
      // The inline-run fallback in spawn() absorbs this.
      DFTH_FAULT_RECOVERED(resil::FaultSite::kCtxCreate);
    }
    if (t->stack) {
      context_make(&t->ctx, t->stack.base, t->stack.top(), &fiber_entry, t);
      DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                      t->stack.fresh ? obs::EvKind::StackFresh
                                     : obs::EvKind::StackReuse,
                      t->id, t->stack.size);
    }
  }
  return t;
}

void RealEngine::fiber_entry(void* arg) {
  Tcb* t = static_cast<Tcb*>(arg);
  t->result = t->entry();
  t->entry = nullptr;
  auto* self = static_cast<RealEngine*>(engine());
  // Flush the final slice and seal the span *before* finish_thread wakes the
  // joiner — the wake edge must read the fiber's finished span. run_fiber
  // skips its post-switch charge on ExitCleanup so nothing double-counts;
  // the slice restarts so the wake edge's offset covers only finish_thread.
#if DFTH_PROF
  if (obs::Profiler* pr = obs::profiler()) {
    Worker* w = this_worker();
    const std::uint64_t now = steady_now_ns();
    pr->work(t->id, now - w->slice_start_ns);
    w->slice_start_ns = now;
    pr->exit_fiber(t->id, 0);
  }
#endif
  self->finish_thread(t);
  t->state.store(ThreadState::Done, std::memory_order_release);
  Worker* w = this_worker();
  w->post = Post::ExitCleanup;
  w->post_fiber = t;
  context_switch_final(&t->ctx, &w->ctx);
}

void RealEngine::finish_thread(Tcb* t) {
  DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                  obs::EvKind::Exit, t->id, 0);
  DFTH_REPLAY_GATE_SELF();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!t->attr.bound) sched_->unregister_thread(t);
    --live_;
    progress_.fetch_add(1, std::memory_order_relaxed);
    DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::ExitSched,
                       ::dfth::replay::self_actor(), t->id, 0);
    if (live_ == 0) {
      done_ = true;
      cv_.notify_all();
      done_cv_.notify_all();
    }
  }
  DFTH_REPLAY_GATE_SELF();
  t->join_lock.lock();
  t->finished = true;
  Tcb* joiner = t->joiner;
  t->joiner = nullptr;
  // The exit-vs-join race on join_lock decides whether the joiner blocks;
  // b records which joiner (0 = none yet) so replay verifies the outcome.
  DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::ExitJoin,
                     ::dfth::replay::self_actor(), t->id,
                     joiner ? joiner->id : 0);
  t->join_lock.unlock();
  if (joiner) wake(joiner);
}

Tcb* RealEngine::spawn(std::function<void*()> fn, const Attr& attr, bool is_dummy,
                       const char* site_file, int site_line) {
  const std::uint64_t fork_t0 = steady_now_ns();
  Tcb* child = make_tcb(std::move(fn), attr, is_dummy);
  child->site_file = site_file;
  child->site_line = site_line;
  Worker* w = this_worker();
  Tcb* parent = current();
  child->parent = parent;
  // Deadline propagation: a child without its own cancellation scope joins
  // the parent's, so a request's token covers the whole spawn subtree.
  child->cancel =
      attr.cancel != nullptr ? attr.cancel : (parent ? parent->cancel : nullptr);
  DFTH_RACE_FORK(child, parent);
  if (Recorder* rec = active_recorder()) {
    rec->on_thread_start(child->id, parent ? parent->id : 0);
  }
  DFTH_TRACE_EMIT(w ? w->id : opts_.nprocs,
                  is_dummy ? obs::EvKind::DummySpawn : obs::EvKind::Fork,
                  parent ? parent->id : 0, child->id);
  // Fork edge, emitted before the child is published to the scheduler —
  // another worker may dispatch it (and charge work to it) the moment
  // register_thread returns. The offset is the parent's uncharged partial
  // slice so the child inherits the span as of *now*, not slice start.
  DFTH_PROF_THREAD_START(
      child->id, parent ? parent->id : 0,
      (w && parent && !parent->attr.bound) ? steady_now_ns() - w->slice_start_ns
                                           : 0,
      child->site_file, child->site_line);

  if (child->attr.bound) {
    DFTH_REPLAY_GATE_SELF();
    {
      std::lock_guard<std::mutex> lk(mu_);
      all_tcbs_.push_back(child);
      ++live_;
      ++bound_live_;
      ++stats_.threads_created;
      stats_.max_live_threads = std::max(stats_.max_live_threads, live_);
      DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::SpawnReg,
                         ::dfth::replay::self_actor(), child->id,
                         ::dfth::replay::kSpawnBound);
    }
    start_bound_thread(child);
    return child;
  }

  if (!child->stack) return run_inline(child);

  bool preempt;
  DFTH_REPLAY_GATE_SELF();
  {
    std::lock_guard<std::mutex> lk(mu_);
    all_tcbs_.push_back(child);
    preempt = sched_->register_thread(parent, child);
    ++live_;
    ++stats_.threads_created;
    if (is_dummy) ++stats_.dummy_threads;
    stats_.max_live_threads = std::max(stats_.max_live_threads, live_);
    // A bound (or engine-external) caller has no worker to preempt.
    if (!(preempt && w && parent && !parent->attr.bound)) {
      preempt = false;
      child->state.store(ThreadState::Ready, std::memory_order_relaxed);
      sched_->on_ready(child, w ? w->id : 0);
      cv_.notify_one();
    }
    // Committed after the placement is final: b is the *effective*
    // decision (fork dive or queued), which is what replay must pin.
    DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::SpawnReg,
                       ::dfth::replay::self_actor(), child->id,
                       preempt ? ::dfth::replay::kSpawnPreempt : 0);
  }
  DFTH_PROF_FORK_COST(child->id, steady_now_ns() - fork_t0);

  if (preempt) {
    // Dive into the child; the worker requeues the parent once its context
    // is fully saved (save-before-publish, see header comment).
    DFTH_TRACE_EMIT(w->id, obs::EvKind::Preempt, parent->id,
                    obs::kPreemptForkDive);
    w->post = Post::RunNext;
    w->post_fiber = parent;
    w->post_next = child;
    context_switch(&parent->ctx, &w->ctx);
    // Parent resumes here later, possibly on a different worker.
  }
  return child;
}

Tcb* RealEngine::run_inline(Tcb* child) {
  // Stack or context acquisition failed even after the pool's fallbacks.
  // Degrade by running the child to completion on the caller's stack: the
  // child precedes the parent's continuation in the serial depth-first
  // order, so this is the 1-processor schedule — correct, just not
  // parallel. The child is never registered with the scheduler and never
  // counted in live_ (it is already Done when the handle becomes visible).
  [[maybe_unused]] Tcb* parent = current();
  DFTH_REPLAY_GATE_SELF();
  {
    std::lock_guard<std::mutex> lk(mu_);
    all_tcbs_.push_back(child);
    ++stats_.threads_created;
    ++stats_.inline_runs;
    if (child->is_dummy) ++stats_.dummy_threads;
#if DFTH_VALIDATE
    if (auto* aud = analyze::active_auditor()) aud->on_inline_run(parent, child);
#endif
    DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::SpawnReg,
                       ::dfth::replay::self_actor(), child->id,
                       ::dfth::replay::kSpawnInline);
  }
  DFTH_COUNT(obs::Counter::InlineRuns);
  child->state.store(ThreadState::Running, std::memory_order_relaxed);
  ++child->dispatches;
  DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                  obs::EvKind::Dispatch, child->id, child->dispatches);
  child->result = child->entry();
  child->entry = nullptr;
  DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                  obs::EvKind::Exit, child->id, 0);
  // The body's time lands in the caller's slice (it ran on the caller's
  // stack — serialized on the caller's span, which is what inline means).
  DFTH_PROF_EXIT(child->id, 0);
  child->join_lock.lock();
  child->finished = true;
  child->join_lock.unlock();
  child->state.store(ThreadState::Done, std::memory_order_release);
  return child;
}

void RealEngine::start_bound_thread(Tcb* t) {
  std::lock_guard<std::mutex> lk(mu_);
  bound_threads_.emplace_back([this, t] {
    tl_bound = t;
    t->state.store(ThreadState::Running, std::memory_order_relaxed);
    const std::uint64_t t0 = steady_now_ns();
    t->result = t->entry();
    t->entry = nullptr;
    // A bound thread is one uninterrupted slice on its own kernel thread.
    DFTH_PROF_WORK(t->id, steady_now_ns() - t0);
    DFTH_PROF_EXIT(t->id, 0);
    t->state.store(ThreadState::Done, std::memory_order_release);
    {
      std::lock_guard<std::mutex> inner(mu_);
      --bound_live_;
    }
    finish_thread(t);
    tl_bound = nullptr;
  });
}

void* RealEngine::join(Tcb* t) {
  DFTH_CHECK_MSG(!t->detached, "join of detached thread");
  DFTH_CHECK_MSG(!t->joined, "thread joined twice");
  DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                  obs::EvKind::Join, current() ? current()->id : 0, t->id);
  DFTH_REPLAY_GATE_SELF();
  t->join_lock.lock();
  // The join-vs-exit race on join_lock decides blocking; commit the outcome
  // inside the section so replay reproduces (and verifies) it.
  DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::Join, ::dfth::replay::self_actor(),
                     t->id, t->finished ? 0 : 1);
  if (!t->finished) {
    Tcb* cur = current();
    DFTH_CHECK_MSG(cur, "join from outside the runtime");
    DFTH_CHECK_MSG(t->joiner == nullptr, "two concurrent joiners");
    t->joiner = cur;
    cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
    block_current(&t->join_lock);  // releases join_lock after the switch
    DFTH_CHECK(t->finished);
    // Span edge for this path: the wake() from finish_thread.
  } else {
    t->join_lock.unlock();
    // Fast path — the child already finished; take the span max here.
    Worker* w = this_worker();
    Tcb* cur = current();
    DFTH_PROF_JOIN(cur ? cur->id : 0, t->id,
                   (w && cur) ? steady_now_ns() - w->slice_start_ns : 0);
  }
  t->joined = true;
  return t->result;
}

void RealEngine::detach(Tcb* t) { t->detached = true; }

void RealEngine::yield() {
  Worker* w = this_worker();
  if (!w) {
    std::this_thread::yield();  // bound threads yield to the kernel
    return;
  }
  Tcb* cur = w->current;
  DFTH_TRACE_EMIT(w->id, obs::EvKind::Preempt, cur->id, obs::kPreemptYield);
  w->post = Post::Requeue;
  w->post_fiber = cur;
  context_switch(&cur->ctx, &w->ctx);
}

void RealEngine::block_current(SpinLock* guard) {
  Tcb* cur = current();
  DFTH_CHECK(cur && cur->state.load(std::memory_order_relaxed) == ThreadState::Blocked);
  DFTH_CHECK_MSG(guard->is_locked(),
                 "block_current without holding the wait-list guard");
  Worker* w = this_worker();
  DFTH_TRACE_EMIT(w ? w->id : opts_.nprocs, obs::EvKind::Block, cur->id, 0);
  if (!w || cur->attr.bound) {
    // Bound threads have no fiber to switch away from: release the guard
    // and wait for wake() to flip the state (kernel-level blocking stand-in).
    guard->unlock();
    while (cur->state.load(std::memory_order_acquire) == ThreadState::Blocked) {
      std::this_thread::yield();
    }
    return;
  }
  w->post = Post::ReleaseGuard;
  w->post_guard = guard;
  context_switch(&cur->ctx, &w->ctx);
}

void RealEngine::block_current_timed(SpinLock* guard, WaitList* list,
                                     std::uint64_t timeout_ns) {
  Tcb* cur = current();
  DFTH_CHECK(cur && cur->state.load(std::memory_order_relaxed) == ThreadState::Blocked);
  DFTH_CHECK_MSG(guard != nullptr && guard->is_locked(),
                 "block_current_timed without holding the wait-list guard");
  DFTH_CHECK(list != nullptr);
  cur->timed_out = false;
  Worker* w = this_worker();
  DFTH_TRACE_EMIT(w ? w->id : opts_.nprocs, obs::EvKind::Block, cur->id, 0);

  if (!w || cur->attr.bound) {
    // Bound threads poll with a deadline: on expiry, claim ourselves off the
    // wait list under the guard. Losing the claim means a waker popped us
    // and is about to flip our state — keep spinning for that.
    guard->unlock();
    const std::uint64_t deadline = steady_now_ns() + timeout_ns;
    while (cur->state.load(std::memory_order_acquire) == ThreadState::Blocked) {
      bool due = steady_now_ns() >= deadline;
#if DFTH_REPLAY
      if (auto* rs = replay::active();
          rs != nullptr && rs->mode() == replay::Mode::Replay &&
          !rs->replay_exhausted()) {
        // The deadline-vs-waker race is pinned: expire exactly when the log
        // says this waiter claimed itself, never on this run's wall clock.
        due = rs->head_is(replay::EvKind::TimeoutClaim, cur->id, nullptr);
      }
#endif
      if (due) {
        guard->lock();
        const bool claimed = list->remove(cur);
        if (claimed) {
          DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::TimeoutClaim, cur->id,
                             cur->id, 0);
        }
        guard->unlock();
        if (claimed) {
          cur->timed_out = true;
          cur->state.store(ThreadState::Ready, std::memory_order_relaxed);
          {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.sync_timeouts;
          }
          DFTH_COUNT(obs::Counter::SyncTimeouts);
          DFTH_TRACE_EMIT(opts_.nprocs, obs::EvKind::Wake, cur->id, 0);
          return;
        }
      }
      std::this_thread::yield();
    }
    return;
  }

  // Unbound fiber: arm the supervisor's timer *before* switching away. The
  // timer can only claim us off the wait list under the guard, which the
  // worker releases strictly after our context is saved (Post::ReleaseGuard)
  // — so a premature fire blocks on the guard until the save completes.
  {
    std::lock_guard<std::mutex> lk(sup_mu_);
    sleepers_.push_back({steady_now_ns() + timeout_ns, cur, guard, list});
  }
  sup_cv_.notify_all();
  w->post = Post::ReleaseGuard;
  w->post_guard = guard;
  context_switch(&cur->ctx, &w->ctx);
  // Resumed by the timer or a waker; either way the timer entry is dead.
  cancel_sleeper(cur);
}

void RealEngine::cancel_sleeper(Tcb* t) {
  std::unique_lock<std::mutex> lk(sup_mu_);
  // An in-flight fire for t already left sleepers_ but may not have taken
  // the guard yet; wait it out or it could claim t's *next* wait.
  sup_cv_.wait(lk, [this, t] { return firing_ != t; });
  for (std::size_t i = 0; i < sleepers_.size(); ++i) {
    if (sleepers_[i].t == t) {
      sleepers_.erase(sleepers_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void RealEngine::wake(Tcb* t) {
  DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                  obs::EvKind::Wake, t->id, current() ? current()->id : 0);
  {
    Worker* w = this_worker();
    Tcb* cur = current();
    DFTH_PROF_WAKE(
        cur ? cur->id : 0, t->id,
        (w && cur && !cur->attr.bound) ? steady_now_ns() - w->slice_start_ns
                                       : 0);
  }
  if (t->attr.bound) {
    // A bound waiter spins on its own state word; no shared scheduler state
    // is touched, so this store is not an ordered replay event (documented
    // limitation: bound-thread wake timing is not bit-pinned).
    t->state.store(ThreadState::Ready, std::memory_order_release);
    return;
  }
  Worker* w = this_worker();
  DFTH_REPLAY_GATE_SELF();
  std::lock_guard<std::mutex> lk(mu_);
  t->state.store(ThreadState::Ready, std::memory_order_relaxed);
  t->ready_at_ns = 0;
  sched_->on_ready(t, w ? w->id : 0);
  progress_.fetch_add(1, std::memory_order_relaxed);
  DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::Wake, ::dfth::replay::self_actor(),
                     t->id, 0);
  cv_.notify_one();
}

void RealEngine::on_alloc(std::size_t bytes, std::int64_t fresh_bytes) {
  (void)fresh_bytes;
  DFTH_TRACE_ALLOC_EVENT(this_worker() ? this_worker()->id : opts_.nprocs,
                         obs::EvKind::Alloc, current() ? current()->id : 0,
                         bytes);
  if (!sched_->needs_quota()) return;
  Tcb* cur = current();
  Worker* w = this_worker();
  if (!cur || !w || cur->attr.bound) return;
  cur->quota -= static_cast<std::int64_t>(bytes);
  if (cur->quota <= 0) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.quota_preemptions;
    }
    DFTH_TRACE_EMIT(w->id, obs::EvKind::QuotaExhaust, cur->id, bytes);
    DFTH_TRACE_EMIT(w->id, obs::EvKind::Preempt, cur->id, obs::kPreemptQuota);
    w->post = Post::Requeue;
    w->post_fiber = cur;
    context_switch(&cur->ctx, &w->ctx);
  }
}

void RealEngine::on_free(std::size_t bytes) {
  DFTH_TRACE_ALLOC_EVENT(this_worker() ? this_worker()->id : opts_.nprocs,
                         obs::EvKind::Free, current() ? current()->id : 0,
                         bytes);
}

bool RealEngine::uses_alloc_quota() const { return sched_->needs_quota(); }

bool RealEngine::on_alloc_failed(std::size_t bytes, int attempt) {
  (void)bytes;
  // Treat heap exhaustion like quota exhaustion: preempt AsyncDF-style,
  // shrink the effective K, back off, retry — bounded, then df_try_malloc
  // surfaces DfStatus::kNoMem.
  constexpr int kOomMaxAttempts = 16;
  if (attempt >= kOomMaxAttempts) return false;
  DFTH_COUNT(obs::Counter::OomPreempts);
  Tcb* cur = current();
#if DFTH_VALIDATE
  if (auto* aud = analyze::active_auditor()) aud->on_oom_preempt(cur);
#endif
  // The halving is an ordered decision: every later dispatch grants
  // t->quota from eff_quota_, so the quota a fiber runs with — and hence
  // where it quota-preempts — depends on how many halvings landed before
  // its dispatch. Serialize the shrink under mu_ (the same lock the grant
  // holds) and log it like any other scheduling decision; a lock-free CAS
  // here raced the grants at physical timing, which record/replay cannot
  // pin.
  DFTH_REPLAY_GATE_SELF();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.oom_preemptions;
    const std::size_t q = eff_quota_.load(std::memory_order_relaxed);
    std::size_t shrunk = q;
    if (q > 0) {
      shrunk = std::max<std::size_t>(q / 2, 4096);
      eff_quota_.store(shrunk, std::memory_order_relaxed);
    }
    DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::QuotaShrink,
                       ::dfth::replay::self_actor(), shrunk,
                       static_cast<std::uint64_t>(attempt));
  }
  // Real backoff: give concurrent frees a chance to land before retrying.
  std::this_thread::sleep_for(
      std::chrono::microseconds(50ull << std::min(attempt, 8)));
  Worker* w = this_worker();
  if (cur && w && !cur->attr.bound) {
    DFTH_TRACE_EMIT(w->id, obs::EvKind::Preempt, cur->id, obs::kPreemptOom);
    w->post = Post::Requeue;
    w->post_fiber = cur;
    context_switch(&cur->ctx, &w->ctx);
  }
  return true;
}

void RealEngine::run_fiber(Worker& w, Tcb* t) {
  w.current = t;
  w.post = Post::None;
  w.post_fiber = nullptr;
  w.post_next = nullptr;
  w.post_guard = nullptr;
#if DFTH_PROF
  if (obs::profiler()) w.slice_start_ns = steady_now_ns();
#endif
  context_switch(&w.ctx, &t->ctx);
#if DFTH_PROF
  if (obs::Profiler* pr = obs::profiler()) {
    const std::uint64_t now = steady_now_ns();
    // ExitCleanup: fiber_entry already flushed the slice before sealing.
    if (w.post != Post::ExitCleanup) pr->work(t->id, now - w.slice_start_ns);
    w.idle_since_ns = now;
  }
#endif
  w.current = nullptr;
}

void RealEngine::handle_post(Worker& w) {
  switch (w.post) {
    case Post::None:
      break;
    case Post::ReleaseGuard:
      w.post_guard->unlock();
      break;
    case Post::Requeue:
      enqueue_ready(w.post_fiber, w.id);
      break;
    case Post::RunNext:
      enqueue_ready(w.post_fiber, w.id);
      break;  // caller inspects post_next
    case Post::ExitCleanup: {
      Tcb* t = w.post_fiber;
      context_finalize(&t->ctx);
      StackPool::instance().release(t->stack);
      t->stack = Stack{};
      break;
    }
  }
}

void RealEngine::enqueue_ready(Tcb* t, int proc_hint) {
  // Only workers reach here (handle_post), so the deciding actor is the
  // lane, not a fiber — the requeued fiber's context is already detached.
  DFTH_REPLAY_GATE(::dfth::replay::lane_actor(proc_hint));
  std::lock_guard<std::mutex> lk(mu_);
  t->state.store(ThreadState::Ready, std::memory_order_relaxed);
  sched_->on_ready(t, proc_hint);
  progress_.fetch_add(1, std::memory_order_relaxed);
  DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::Requeue,
                     ::dfth::replay::lane_actor(proc_hint), t->id, 0);
  cv_.notify_one();
}

std::uint64_t RealEngine::now_ns() const { return steady_now_ns(); }

std::uint64_t RealEngine::dispatch_cancel_flags(Tcb* t, int lane,
                                                std::uint64_t base) {
  CancelToken* c = t->cancel;
  bool fire = false;
#if DFTH_REPLAY
  if (auto* rs = replay::active();
      rs != nullptr && rs->mode() == replay::Mode::Replay &&
      !rs->replay_exhausted()) {
    // Pinned replay: this lane's gate already passed, so the head is this
    // very Dispatch — read the recorded expire-or-not flag instead of the
    // clock (which drifts between runs). head_is failing here just means
    // the run is about to diverge; commit will diagnose that, so stay
    // conservative and don't fire.
    std::uint64_t tid = 0;
    std::uint64_t logged_b = 0;
    if (rs->head_is(replay::EvKind::Dispatch, replay::lane_actor(lane), &tid,
                    nullptr, &logged_b) &&
        tid == t->id) {
      fire = (logged_b & replay::kDispatchDeadline) != 0;
    }
    if (!fire) return base;
    if (c != nullptr && !c->is_cancelled()) c->cancel();
    ++stats_.deadline_expirations;
    DFTH_TRACE_EMIT(lane, obs::EvKind::Preempt, t->id, obs::kPreemptDeadline);
    return base | replay::kDispatchDeadline;
  }
#endif
  fire = c != nullptr && c->deadline_ns != 0 && !c->is_cancelled() &&
         steady_now_ns() >= c->deadline_ns;
  if (!fire) return base;
  c->cancel();
  ++stats_.deadline_expirations;
  DFTH_TRACE_EMIT(lane, obs::EvKind::Preempt, t->id, obs::kPreemptDeadline);
  DFTH_REPLAY_CANCEL_FIRE(lane, t->id);
  return base | ::dfth::replay::kDispatchDeadline;
}

void RealEngine::worker_loop(Worker& w) {
  tl_worker = &w;
  DFTH_REPLAY_BIND_LANE(w.id);
  std::unique_lock<std::mutex> lk(mu_);
  while (!done_) {
#if DFTH_REPLAY
    // Admission control: in a pinned replay a lane may only take the
    // scheduler lock to dispatch when the log's next ordered decision is its
    // own (its events are all emitted from this kernel thread in program
    // order, so the head here is always this lane's next Dispatch).
    if (auto* rs = replay::active();
        rs != nullptr && rs->mode() == replay::Mode::Replay) {
      lk.unlock();
      rs->gate(replay::lane_actor(w.id));
      lk.lock();
      if (done_) break;
    }
#endif
#if DFTH_PROF
    std::uint64_t pick_t0 = 0;
    if (obs::profiler()) pick_t0 = steady_now_ns();
#endif
    std::uint64_t earliest = kInf;
    Tcb* t = sched_->pick_next(w.id, kInf, &earliest);
    if (!t) {
      ++idle_workers_;
      auto all_stuck = [this] {
        if (idle_workers_ != static_cast<int>(workers_.size())) return false;
        if (live_ <= 0 || bound_live_ > 0 || sched_->ready_count() != 0) return false;
        for (const auto& other : workers_) {
          if (other.current) return false;
        }
        return true;
      };
      if (all_stuck()) {
        // Possible deadlock — but a bound thread or an in-flight wake() may
        // be about to ready someone, so only abort if the condition persists
        // across a grace period with no notification arriving.
        const auto verdict = cv_.wait_for(lk, std::chrono::milliseconds(500));
        if (verdict == std::cv_status::timeout && all_stuck()) {
          dump_flight("RealEngine: deadlock — all workers idle, no ready work",
                      /*have_lock=*/true);
          DFTH_CHECK_MSG(false, "deadlock: all threads blocked");
        }
      } else {
        cv_.wait(lk);
      }
      --idle_workers_;
      continue;
    }
    t->state.store(ThreadState::Running, std::memory_order_relaxed);
    t->quota =
        static_cast<std::int64_t>(eff_quota_.load(std::memory_order_relaxed));
    ++t->dispatches;
    ++stats_.dispatches;
    progress_.fetch_add(1, std::memory_order_relaxed);
    DFTH_TRACE_EMIT(w.id, obs::EvKind::Dispatch, t->id, t->dispatches);
    [[maybe_unused]] const std::uint64_t cancel_b =
        dispatch_cancel_flags(t, w.id, 0);
    DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::Dispatch,
                       ::dfth::replay::lane_actor(w.id), t->id, cancel_b);
#if DFTH_PROF
    if (obs::Profiler* pr = obs::profiler()) {
      const std::uint64_t now = steady_now_ns();
      const std::uint64_t gap =
          w.idle_since_ns ? now - w.idle_since_ns : 0;
      pr->dispatch(t->id, now - pick_t0, gap);
      DFTH_HIST(obs::Hist::DispatchGapNs, gap);
    }
#endif
    lk.unlock();

    Tcb* next = t;
    while (next) {
      run_fiber(w, next);
      const Post post = w.post;
      Tcb* follow = w.post_next;
      handle_post(w);
      if (post == Post::RunNext) {
#if DFTH_PROF
        std::uint64_t dive_t0 = 0;
        if (obs::profiler()) dive_t0 = steady_now_ns();
#endif
        DFTH_REPLAY_GATE(::dfth::replay::lane_actor(w.id));
        {
          std::lock_guard<std::mutex> inner(mu_);
          follow->state.store(ThreadState::Running, std::memory_order_relaxed);
          follow->quota = static_cast<std::int64_t>(
              eff_quota_.load(std::memory_order_relaxed));
          ++follow->dispatches;
          ++stats_.dispatches;
          progress_.fetch_add(1, std::memory_order_relaxed);
          DFTH_TRACE_EMIT(w.id, obs::EvKind::Dispatch, follow->id,
                          follow->dispatches);
          // kDispatchForkDive: a dive, not a queue-served pick — cross-replay
          // on the simulator excludes these (they re-happen on its own spawn
          // path).
          [[maybe_unused]] const std::uint64_t dive_b = dispatch_cancel_flags(
              follow, w.id, ::dfth::replay::kDispatchForkDive);
          DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::Dispatch,
                             ::dfth::replay::lane_actor(w.id), follow->id,
                             dive_b);
        }
#if DFTH_PROF
        if (obs::Profiler* pr = obs::profiler()) {
          pr->dispatch(follow->id, steady_now_ns() - dive_t0, 0);
        }
#endif
        next = follow;
      } else {
        next = nullptr;
      }
    }
    lk.lock();
  }
  tl_worker = nullptr;
}

// -- supervisor: timed-wait timers + stall watchdog -------------------------

void RealEngine::fire_due_sleepers(std::unique_lock<std::mutex>& lk) {
  // Called with lk (sup_mu_) held. The vector mutates while unlocked, so
  // restart the scan after every fire; fired entries are gone, so it ends.
restart:
  const std::uint64_t now = steady_now_ns();
  for (std::size_t i = 0; i < sleepers_.size(); ++i) {
    if (sleepers_[i].deadline_ns > now) continue;
    const RtSleeper s = sleepers_[i];
    sleepers_.erase(sleepers_.begin() + static_cast<std::ptrdiff_t>(i));
    firing_ = s.t;
    lk.unlock();
    // Claim protocol: wait-list membership under the guard is the claim.
    // Losing means a waker popped the fiber first; its wake() owns the
    // resume and the timer loses quietly.
    s.guard->lock();
    const bool claimed = s.list->remove(s.t);
    if (claimed) {
      DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::TimeoutClaim,
                         ::dfth::replay::kActorTimer, s.t->id, 0);
    }
    s.guard->unlock();
    if (claimed) {
      s.t->timed_out = true;
      DFTH_TRACE_EMIT(opts_.nprocs, obs::EvKind::Wake, s.t->id, 0);
      DFTH_COUNT(obs::Counter::SyncTimeouts);
      DFTH_REPLAY_GATE(::dfth::replay::kActorTimer);
      std::lock_guard<std::mutex> g(mu_);
      ++stats_.sync_timeouts;
      s.t->state.store(ThreadState::Ready, std::memory_order_relaxed);
      s.t->ready_at_ns = 0;
      sched_->on_ready(s.t, 0);
      progress_.fetch_add(1, std::memory_order_relaxed);
      DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::TimeoutReady,
                         ::dfth::replay::kActorTimer, s.t->id, 0);
      cv_.notify_one();
    }
    lk.lock();
    firing_ = nullptr;
    sup_cv_.notify_all();
    goto restart;
  }
}

#if DFTH_REPLAY
void RealEngine::replay_fire_sleepers(std::unique_lock<std::mutex>& lk) {
  auto* rs = replay::active();
  DFTH_CHECK(rs != nullptr && rs->mode() == replay::Mode::Replay);
restart:
  std::uint64_t tid = 0;
  if (!rs->head_is(replay::EvKind::TimeoutClaim, replay::kActorTimer, &tid)) {
    // A truncated (abort-time) log free-runs on wall-clock deadlines once
    // every ordered decision has been consumed.
    if (rs->replay_exhausted()) fire_due_sleepers(lk);
    return;
  }
  // The log's next decision is a timer claim of fiber `tid`. Its sleeper may
  // not be armed yet (the fiber is still switching away) — leave the head
  // alone and retry on the next supervisor poll.
  for (std::size_t i = 0; i < sleepers_.size(); ++i) {
    if (sleepers_[i].t->id != tid) continue;
    const RtSleeper s = sleepers_[i];
    sleepers_.erase(sleepers_.begin() + static_cast<std::ptrdiff_t>(i));
    firing_ = s.t;
    lk.unlock();
    s.guard->lock();
    const bool claimed = s.list->remove(s.t);
    // A waker cannot have popped the fiber first: its guard section is gated
    // behind this very record. Losing the claim anyway means the run
    // diverged from the log.
    DFTH_CHECK_MSG(claimed, "replay: logged timeout claim lost its race");
    rs->commit(replay::EvKind::TimeoutClaim, replay::kActorTimer, tid, 0);
    s.guard->unlock();
    s.t->timed_out = true;
    DFTH_TRACE_EMIT(opts_.nprocs, obs::EvKind::Wake, s.t->id, 0);
    DFTH_COUNT(obs::Counter::SyncTimeouts);
    rs->gate(replay::kActorTimer);
    {
      std::lock_guard<std::mutex> g(mu_);
      ++stats_.sync_timeouts;
      s.t->state.store(ThreadState::Ready, std::memory_order_relaxed);
      s.t->ready_at_ns = 0;
      sched_->on_ready(s.t, 0);
      progress_.fetch_add(1, std::memory_order_relaxed);
      rs->commit(replay::EvKind::TimeoutReady, replay::kActorTimer, tid, 0);
      cv_.notify_one();
    }
    lk.lock();
    firing_ = nullptr;
    sup_cv_.notify_all();
    goto restart;
  }
}
#endif  // DFTH_REPLAY

void RealEngine::supervisor_loop() {
  using std::chrono::milliseconds;
  using std::chrono::nanoseconds;
  const milliseconds stall(opts_.watchdog.stall_deadline_ms);
  std::uint64_t last_progress = progress_.load(std::memory_order_relaxed);
  auto last_change = std::chrono::steady_clock::now();

  std::unique_lock<std::mutex> lk(sup_mu_);
  while (!sup_stop_) {
    // Nap until the nearest timer deadline or the next watchdog poll,
    // whichever is sooner; sleep unbounded when neither is armed.
    std::uint64_t nap_ns = kInf;
    const std::uint64_t now_ns = steady_now_ns();
    for (const RtSleeper& s : sleepers_) {
      nap_ns = std::min(nap_ns,
                        s.deadline_ns > now_ns ? s.deadline_ns - now_ns : 0);
    }
    if (stall.count() > 0) {
      const auto poll = std::max(stall / 4, milliseconds(1));
      nap_ns = std::min(
          nap_ns, static_cast<std::uint64_t>(nanoseconds(poll).count()));
    }
#if DFTH_REPLAY
    const bool pinned = [] {
      auto* rs = replay::active();
      return rs != nullptr && rs->mode() == replay::Mode::Replay;
    }();
    if (pinned) {
      // Replayed timer fires are driven by the log head, not by deadlines —
      // no notification marks the head becoming a TimeoutClaim, so poll at a
      // flat 1ms. Deadline-derived naps must not apply here: a past-due
      // sleeper the log is not yet ready to fire yields nap_ns == 0, and a
      // zero nap skips both wait branches below — the loop would then spin
      // without ever releasing sup_mu_, starving fibers that register and
      // deregister sleepers under it (a replay-only livelock).
      nap_ns = std::uint64_t{1'000'000};
    }
#endif
    if (nap_ns == kInf) {
      sup_cv_.wait(lk);
    } else if (nap_ns > 0) {
      sup_cv_.wait_for(lk, nanoseconds(nap_ns));
    }
    if (sup_stop_) break;

#if DFTH_REPLAY
    if (pinned) {
      replay_fire_sleepers(lk);
    } else {
      fire_due_sleepers(lk);
    }
#else
    fire_due_sleepers(lk);
#endif

    if (stall.count() > 0) {
      // Liveness heartbeat (resil/watchdog.h): an intentionally idle serving
      // engine beats instead of dispatching. Both counters only grow, so the
      // sum moves whenever either does and the snapshot logic is unchanged.
      std::uint64_t p = progress_.load(std::memory_order_relaxed);
      if (const auto* hb = opts_.watchdog.heartbeat) {
        p += hb->load(std::memory_order_relaxed);
      }
      const auto now = std::chrono::steady_clock::now();
      if (p != last_progress) {
        last_progress = p;
        last_change = now;
      } else if (now - last_change >= stall) {
        // No dispatch/wake/exit for a full deadline. Only trip while live
        // work remains — a finished run making no progress is just done.
        lk.unlock();
        bool outstanding;
        {
          std::lock_guard<std::mutex> g(mu_);
          outstanding = live_ > 0 && !done_;
        }
        if (outstanding) {
          dump_flight("RealEngine watchdog: no scheduler progress within the "
                      "stall deadline",
                      /*have_lock=*/false);
          DFTH_CHECK_MSG(false, "stall watchdog tripped");
        }
        lk.lock();
        last_change = now;  // run is draining; don't re-trip every poll
      }
    }
  }
}

void RealEngine::dump_flight(const char* reason, bool have_lock) {
  // A wedged worker may hold mu_ forever; bound the wait, then dump the
  // possibly-inconsistent snapshot anyway (flagged as such).
  std::unique_lock<std::mutex> lk(mu_, std::defer_lock);
  bool locked = have_lock;
  if (!have_lock) {
    for (int i = 0; i < 200 && !locked; ++i) {
      locked = lk.try_lock();
      if (!locked) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  resil::FlightInfo info;
  info.reason = reason;
  info.engine = "real";
  info.live_threads = live_;
  info.sched_state_consistent = locked;
  for (const Worker& w : workers_) info.lanes.push_back({w.id, w.current});
  info.all_tcbs = &all_tcbs_;
  info.sched = sched_.get();
  info.tracer = obs::tracer();
#if DFTH_REPLAY
  if (auto* rs = replay::active()) {
    if (rs->mode() == replay::Mode::Record) {
      // Persist the schedule up to the abort so the hang itself replays.
      rs->flush_partial();
      info.record_log = rs->path();
      info.replay_cmd = "tools/dfth-replay replay " + rs->path();
    } else {
      info.replay_log = rs->path();
      info.replay_position = rs->position_summary();
    }
  }
#endif
  resil::dump_flight_recorder(info, opts_.watchdog);
}

RunStats RealEngine::run(const std::function<void()>& main_fn) {
  TrackedHeap::instance().begin_epoch();
  StackPool::instance().begin_epoch();
  eff_quota_.store(opts_.mem_quota, std::memory_order_relaxed);

  // Arm the fault injector for this run if the caller supplied a plan (no-op
  // when faults are compiled out). Per-run fault stats are deltas so a
  // harness that armed the injector itself still gets accurate counts.
  auto& inj = resil::FaultInjector::instance();
  const bool armed_here = resil::kFaultsEnabled && opts_.fault_plan != nullptr;
  if (armed_here) inj.arm(*opts_.fault_plan);
  const std::uint64_t injected0 = inj.injected_total();
  const std::uint64_t recovered0 = inj.recovered_total();

#if DFTH_TRACE
  std::thread sampler;
  std::atomic<bool> sampler_stop{false};
  if (opts_.tracer) {
    obs::detail::set_tracer(opts_.tracer);
    // One lane per worker plus a shared "external" lane for bound threads
    // and engine-external callers.
    opts_.tracer->begin_run(
        opts_.nprocs + 1,
        [t0 = steady_now_ns()] { return steady_now_ns() - t0; });
  }
#endif

#if DFTH_PROF
  if (opts_.profiler) {
    opts_.profiler->begin_run();
    obs::detail::set_profiler(opts_.profiler);
  }
#endif

  Timer timer;

  Tcb* main = make_tcb(
      [&main_fn]() -> void* {
        main_fn();
        return nullptr;
      },
      Attr{}, /*is_dummy=*/false);
  main->is_main = true;
  main->site_file = "<main>";
  main->site_line = 0;
  DFTH_RACE_FORK(main, nullptr);
  DFTH_PROF_THREAD_START(main->id, 0, 0, main->site_file, main->site_line);
  if (!main->stack) {
    // No fiber stack for main even after the pool's heap fallback (or an
    // injected ctx.create fault): run main bound on a dedicated kernel
    // thread — the Solaris bound-thread escape hatch. Children it spawns
    // still go through the scheduler as usual.
    main->attr.bound = true;
    DFTH_REPLAY_GATE(::dfth::replay::kActorHost);
    {
      std::lock_guard<std::mutex> lk(mu_);
      all_tcbs_.push_back(main);
      live_ = 1;
      ++bound_live_;
      stats_.threads_created = 1;
      stats_.max_live_threads = 1;
      DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::SpawnReg,
                         ::dfth::replay::kActorHost, main->id,
                         ::dfth::replay::kSpawnBound);
    }
    start_bound_thread(main);
  } else {
    DFTH_REPLAY_GATE(::dfth::replay::kActorHost);
    std::lock_guard<std::mutex> lk(mu_);
    all_tcbs_.push_back(main);
    sched_->register_thread(nullptr, main);
    main->state.store(ThreadState::Ready, std::memory_order_relaxed);
    sched_->on_ready(main, 0);
    live_ = 1;
    stats_.threads_created = 1;
    stats_.max_live_threads = 1;
    DFTH_REPLAY_COMMIT(::dfth::replay::EvKind::SpawnReg,
                       ::dfth::replay::kActorHost, main->id, 0);
  }

  // Resource-exhaustion degradation: losing workers only loses parallelism.
  // Worker 0 is exempt so the run is always able to make progress. The kept
  // count is fixed *before* any thread starts: ids stay dense in
  // [0, nprocs), which every scheduler hint path assumes.
  int kept_workers = 0;
  for (int i = 0; i < opts_.nprocs; ++i) {
    if (i > 0 && DFTH_FAULT_SHOULD_FAIL(resil::FaultSite::kWorkerSpawn)) {
      DFTH_FAULT_RECOVERED(resil::FaultSite::kWorkerSpawn);
      continue;
    }
    ++kept_workers;
  }
  workers_.resize(static_cast<std::size_t>(kept_workers));
  for (int i = 0; i < kept_workers; ++i) {
    workers_[static_cast<std::size_t>(i)].id = i;
  }
  for (auto& w : workers_) {
    // Genuine kernel-thread exhaustion: retry with backoff — other processes
    // (or our own exiting bound threads) may return slots — then give up
    // loudly. (Injected worker.spawn faults were already absorbed above by
    // shrinking the worker count before any thread started.)
    for (int attempt = 0;; ++attempt) {
      try {
        w.thread = std::thread([this, &w] { worker_loop(w); });
        break;
      } catch (const std::system_error&) {
        DFTH_CHECK_MSG(attempt < 4, "cannot spawn worker kernel threads");
        std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lk(sup_mu_);
    sup_stop_ = false;
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });

#if DFTH_TRACE
  if (obs::Tracer* tr = obs::tracer()) {
    std::uint64_t interval_ns = tr->config().sample_interval_ns;
    if (interval_ns == 0) interval_ns = 1'000'000;  // 1 ms
    sampler = std::thread([this, tr, interval_ns, &sampler_stop] {
      while (!sampler_stop.load(std::memory_order_acquire)) {
        obs::Sample s;
        s.ts_ns = tr->now();
        {
          std::lock_guard<std::mutex> lk(mu_);
          s.live_threads = live_;
          s.ready = static_cast<std::int64_t>(sched_->ready_count());
        }
        s.heap_bytes = TrackedHeap::instance().live_bytes();
        s.stack_bytes = StackPool::instance().live_bytes();
        tr->add_sample(s);
        std::this_thread::sleep_for(std::chrono::nanoseconds(interval_ns));
      }
    });
  }
#endif

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return done_; });
  }
  for (auto& w : workers_) w.thread.join();
  // Worker dispatch-loop contexts are created implicitly by their first
  // save; the ucontext backend heap-allocates an impl for them.
  for (auto& w : workers_) context_destroy(&w.ctx);
  for (auto& bt : bound_threads_) bt.join();
  bound_threads_.clear();
  {
    std::lock_guard<std::mutex> lk(sup_mu_);
    sup_stop_ = true;
  }
  sup_cv_.notify_all();
  supervisor_.join();

  stats_.elapsed_us = timer.elapsed_us();
  stats_.heap_peak = TrackedHeap::instance().peak_bytes();
  stats_.stack_peak = StackPool::instance().peak_bytes();
  stats_.stacks_fresh = StackPool::instance().fresh_count();
  stats_.stacks_reused = StackPool::instance().reuse_count();
  stats_.stack_high_water = StackPool::instance().high_water_bytes();
  if (auto* ws = dynamic_cast<WorkStealScheduler*>(sched_->underlying())) {
    stats_.steals = ws->steal_count();
  }
#if DFTH_REPLAY
  if (auto* prs = dynamic_cast<replay::ReplayScheduler*>(sched_.get())) {
    stats_.steals = prs->steal_count();
  }
#endif

#if DFTH_TRACE
  if (obs::Tracer* tr = obs::tracer()) {
    sampler_stop.store(true, std::memory_order_release);
    sampler.join();
    tr->end_run();
    obs::detail::set_tracer(nullptr);
  }
#endif
#if DFTH_PROF
  if (opts_.profiler) {
    opts_.profiler->end_run(stats_.elapsed_us, opts_.nprocs);
    stats_.profile = opts_.profiler->stats();
    obs::detail::set_profiler(nullptr);
  }
#endif
  stats_.faults_injected = inj.injected_total() - injected0;
  stats_.faults_recovered = inj.recovered_total() - recovered0;
  if (armed_here) inj.disarm();
  return stats_;
}

}  // namespace dfth
