#include "runtime/real_engine.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "analyze/race_hooks.h"
#include "core/worksteal_sched.h"
#include "obs/trace.h"
#include "space/tracked_heap.h"
#include "util/check.h"
#include "util/timer.h"

namespace dfth {
namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
constexpr std::size_t kRealStackFloor = 64 << 10;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local void* tl_worker = nullptr;  // RealEngine::Worker*
thread_local Tcb* tl_bound = nullptr;    // bound thread's own Tcb

}  // namespace

// Both accessors are noinline on purpose: fibers migrate between kernel
// threads, and a thread-local read cached across a context switch would
// observe another worker's state (see engine.h).
__attribute__((noinline)) RealEngine::Worker* RealEngine::this_worker() {
  return static_cast<Worker*>(tl_worker);
}

__attribute__((noinline)) Tcb* RealEngine::current() {
  if (Worker* w = this_worker()) return w->current;
  return tl_bound;
}

RealEngine::RealEngine(const RuntimeOptions& opts) : opts_(opts) {
  DFTH_CHECK(opts_.nprocs >= 1);
  sched_ = make_scheduler(opts_.sched, opts_.nprocs, opts_.seed,
                          opts_.cluster_size);
  stats_.engine = EngineKind::Real;
  stats_.sched = opts_.sched;
  stats_.nprocs = opts_.nprocs;
}

RealEngine::~RealEngine() {
  for (Tcb* t : all_tcbs_) {
    if (t->stack) StackPool::instance().release(t->stack);
    context_destroy(&t->ctx);
    delete t;
  }
}

Tcb* RealEngine::make_tcb(std::function<void*()> fn, const Attr& attr, bool is_dummy) {
  Tcb* t = new Tcb(next_tid_++);
  t->attr = attr;
  if (t->attr.stack_size == 0) t->attr.stack_size = opts_.default_stack_size;
  DFTH_CHECK(t->attr.priority >= 0 && t->attr.priority < kNumPriorities);
  t->entry = std::move(fn);
  t->is_dummy = is_dummy;
  t->detached = attr.detached;
  if (!t->attr.bound) {
    // Real stacks honor the requested size but keep a floor under the
    // benchmarks' serial base cases.
    t->stack = StackPool::instance().acquire(std::max(t->attr.stack_size, kRealStackFloor));
    context_make(&t->ctx, t->stack.base, t->stack.top(), &fiber_entry, t);
    DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                    t->stack.fresh ? obs::EvKind::StackFresh
                                   : obs::EvKind::StackReuse,
                    t->id, t->stack.size);
  }
  return t;
}

void RealEngine::fiber_entry(void* arg) {
  Tcb* t = static_cast<Tcb*>(arg);
  t->result = t->entry();
  t->entry = nullptr;
  auto* self = static_cast<RealEngine*>(engine());
  self->finish_thread(t);
  t->state.store(ThreadState::Done, std::memory_order_release);
  Worker* w = this_worker();
  w->post = Post::ExitCleanup;
  w->post_fiber = t;
  context_switch_final(&t->ctx, &w->ctx);
}

void RealEngine::finish_thread(Tcb* t) {
  DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                  obs::EvKind::Exit, t->id, 0);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!t->attr.bound) sched_->unregister_thread(t);
    --live_;
    if (live_ == 0) {
      done_ = true;
      cv_.notify_all();
      done_cv_.notify_all();
    }
  }
  t->join_lock.lock();
  t->finished = true;
  Tcb* joiner = t->joiner;
  t->joiner = nullptr;
  t->join_lock.unlock();
  if (joiner) wake(joiner);
}

Tcb* RealEngine::spawn(std::function<void*()> fn, const Attr& attr, bool is_dummy) {
  Tcb* child = make_tcb(std::move(fn), attr, is_dummy);
  Worker* w = this_worker();
  Tcb* parent = current();
  child->parent = parent;
  DFTH_RACE_FORK(child, parent);
  if (Recorder* rec = active_recorder()) {
    rec->on_thread_start(child->id, parent ? parent->id : 0);
  }
  DFTH_TRACE_EMIT(w ? w->id : opts_.nprocs,
                  is_dummy ? obs::EvKind::DummySpawn : obs::EvKind::Fork,
                  parent ? parent->id : 0, child->id);

  if (child->attr.bound) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      all_tcbs_.push_back(child);
      ++live_;
      ++bound_live_;
      ++stats_.threads_created;
      stats_.max_live_threads = std::max(stats_.max_live_threads, live_);
    }
    start_bound_thread(child);
    return child;
  }

  bool preempt;
  {
    std::lock_guard<std::mutex> lk(mu_);
    all_tcbs_.push_back(child);
    preempt = sched_->register_thread(parent, child);
    ++live_;
    ++stats_.threads_created;
    if (is_dummy) ++stats_.dummy_threads;
    stats_.max_live_threads = std::max(stats_.max_live_threads, live_);
    // A bound (or engine-external) caller has no worker to preempt.
    if (!(preempt && w && parent && !parent->attr.bound)) {
      preempt = false;
      child->state.store(ThreadState::Ready, std::memory_order_relaxed);
      sched_->on_ready(child, w ? w->id : 0);
      cv_.notify_one();
    }
  }

  if (preempt) {
    // Dive into the child; the worker requeues the parent once its context
    // is fully saved (save-before-publish, see header comment).
    DFTH_TRACE_EMIT(w->id, obs::EvKind::Preempt, parent->id,
                    obs::kPreemptForkDive);
    w->post = Post::RunNext;
    w->post_fiber = parent;
    w->post_next = child;
    context_switch(&parent->ctx, &w->ctx);
    // Parent resumes here later, possibly on a different worker.
  }
  return child;
}

void RealEngine::start_bound_thread(Tcb* t) {
  std::lock_guard<std::mutex> lk(mu_);
  bound_threads_.emplace_back([this, t] {
    tl_bound = t;
    t->state.store(ThreadState::Running, std::memory_order_relaxed);
    t->result = t->entry();
    t->entry = nullptr;
    t->state.store(ThreadState::Done, std::memory_order_release);
    {
      std::lock_guard<std::mutex> inner(mu_);
      --bound_live_;
    }
    finish_thread(t);
    tl_bound = nullptr;
  });
}

void* RealEngine::join(Tcb* t) {
  DFTH_CHECK_MSG(!t->detached, "join of detached thread");
  DFTH_CHECK_MSG(!t->joined, "thread joined twice");
  DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                  obs::EvKind::Join, current() ? current()->id : 0, t->id);
  t->join_lock.lock();
  if (!t->finished) {
    Tcb* cur = current();
    DFTH_CHECK_MSG(cur, "join from outside the runtime");
    DFTH_CHECK_MSG(t->joiner == nullptr, "two concurrent joiners");
    t->joiner = cur;
    cur->state.store(ThreadState::Blocked, std::memory_order_relaxed);
    block_current(&t->join_lock);  // releases join_lock after the switch
    DFTH_CHECK(t->finished);
  } else {
    t->join_lock.unlock();
  }
  t->joined = true;
  return t->result;
}

void RealEngine::detach(Tcb* t) { t->detached = true; }

void RealEngine::yield() {
  Worker* w = this_worker();
  if (!w) {
    std::this_thread::yield();  // bound threads yield to the kernel
    return;
  }
  Tcb* cur = w->current;
  DFTH_TRACE_EMIT(w->id, obs::EvKind::Preempt, cur->id, obs::kPreemptYield);
  w->post = Post::Requeue;
  w->post_fiber = cur;
  context_switch(&cur->ctx, &w->ctx);
}

void RealEngine::block_current(SpinLock* guard) {
  Tcb* cur = current();
  DFTH_CHECK(cur && cur->state.load(std::memory_order_relaxed) == ThreadState::Blocked);
  DFTH_CHECK_MSG(guard->is_locked(),
                 "block_current without holding the wait-list guard");
  Worker* w = this_worker();
  DFTH_TRACE_EMIT(w ? w->id : opts_.nprocs, obs::EvKind::Block, cur->id, 0);
  if (!w || cur->attr.bound) {
    // Bound threads have no fiber to switch away from: release the guard
    // and wait for wake() to flip the state (kernel-level blocking stand-in).
    guard->unlock();
    while (cur->state.load(std::memory_order_acquire) == ThreadState::Blocked) {
      std::this_thread::yield();
    }
    return;
  }
  w->post = Post::ReleaseGuard;
  w->post_guard = guard;
  context_switch(&cur->ctx, &w->ctx);
}

void RealEngine::wake(Tcb* t) {
  DFTH_TRACE_EMIT(this_worker() ? this_worker()->id : opts_.nprocs,
                  obs::EvKind::Wake, t->id, current() ? current()->id : 0);
  if (t->attr.bound) {
    t->state.store(ThreadState::Ready, std::memory_order_release);
    return;
  }
  Worker* w = this_worker();
  std::lock_guard<std::mutex> lk(mu_);
  t->state.store(ThreadState::Ready, std::memory_order_relaxed);
  t->ready_at_ns = 0;
  sched_->on_ready(t, w ? w->id : 0);
  cv_.notify_one();
}

void RealEngine::on_alloc(std::size_t bytes, std::int64_t fresh_bytes) {
  (void)fresh_bytes;
  DFTH_TRACE_ALLOC_EVENT(this_worker() ? this_worker()->id : opts_.nprocs,
                         obs::EvKind::Alloc, current() ? current()->id : 0,
                         bytes);
  if (!sched_->needs_quota()) return;
  Tcb* cur = current();
  Worker* w = this_worker();
  if (!cur || !w || cur->attr.bound) return;
  cur->quota -= static_cast<std::int64_t>(bytes);
  if (cur->quota <= 0) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.quota_preemptions;
    }
    DFTH_TRACE_EMIT(w->id, obs::EvKind::QuotaExhaust, cur->id, bytes);
    DFTH_TRACE_EMIT(w->id, obs::EvKind::Preempt, cur->id, obs::kPreemptQuota);
    w->post = Post::Requeue;
    w->post_fiber = cur;
    context_switch(&cur->ctx, &w->ctx);
  }
}

void RealEngine::on_free(std::size_t bytes) {
  DFTH_TRACE_ALLOC_EVENT(this_worker() ? this_worker()->id : opts_.nprocs,
                         obs::EvKind::Free, current() ? current()->id : 0,
                         bytes);
}

bool RealEngine::uses_alloc_quota() const { return sched_->needs_quota(); }

void RealEngine::run_fiber(Worker& w, Tcb* t) {
  w.current = t;
  w.post = Post::None;
  w.post_fiber = nullptr;
  w.post_next = nullptr;
  w.post_guard = nullptr;
  context_switch(&w.ctx, &t->ctx);
  w.current = nullptr;
}

void RealEngine::handle_post(Worker& w) {
  switch (w.post) {
    case Post::None:
      break;
    case Post::ReleaseGuard:
      w.post_guard->unlock();
      break;
    case Post::Requeue:
      enqueue_ready(w.post_fiber, w.id);
      break;
    case Post::RunNext:
      enqueue_ready(w.post_fiber, w.id);
      break;  // caller inspects post_next
    case Post::ExitCleanup: {
      Tcb* t = w.post_fiber;
      context_finalize(&t->ctx);
      StackPool::instance().release(t->stack);
      t->stack = Stack{};
      break;
    }
  }
}

void RealEngine::enqueue_ready(Tcb* t, int proc_hint) {
  std::lock_guard<std::mutex> lk(mu_);
  t->state.store(ThreadState::Ready, std::memory_order_relaxed);
  sched_->on_ready(t, proc_hint);
  cv_.notify_one();
}

void RealEngine::worker_loop(Worker& w) {
  tl_worker = &w;
  std::unique_lock<std::mutex> lk(mu_);
  while (!done_) {
    std::uint64_t earliest = kInf;
    Tcb* t = sched_->pick_next(w.id, kInf, &earliest);
    if (!t) {
      ++idle_workers_;
      auto all_stuck = [this] {
        if (idle_workers_ != static_cast<int>(workers_.size())) return false;
        if (live_ <= 0 || bound_live_ > 0 || sched_->ready_count() != 0) return false;
        for (const auto& other : workers_) {
          if (other.current) return false;
        }
        return true;
      };
      if (all_stuck()) {
        // Possible deadlock — but a bound thread or an in-flight wake() may
        // be about to ready someone, so only abort if the condition persists
        // across a grace period with no notification arriving.
        const auto verdict = cv_.wait_for(lk, std::chrono::milliseconds(500));
        DFTH_CHECK_MSG(!(verdict == std::cv_status::timeout && all_stuck()),
                       "deadlock: all threads blocked");
      } else {
        cv_.wait(lk);
      }
      --idle_workers_;
      continue;
    }
    t->state.store(ThreadState::Running, std::memory_order_relaxed);
    t->quota = static_cast<std::int64_t>(opts_.mem_quota);
    ++t->dispatches;
    ++stats_.dispatches;
    DFTH_TRACE_EMIT(w.id, obs::EvKind::Dispatch, t->id, t->dispatches);
    lk.unlock();

    Tcb* next = t;
    while (next) {
      run_fiber(w, next);
      const Post post = w.post;
      Tcb* follow = w.post_next;
      handle_post(w);
      if (post == Post::RunNext) {
        {
          std::lock_guard<std::mutex> inner(mu_);
          follow->state.store(ThreadState::Running, std::memory_order_relaxed);
          follow->quota = static_cast<std::int64_t>(opts_.mem_quota);
          ++follow->dispatches;
          ++stats_.dispatches;
          DFTH_TRACE_EMIT(w.id, obs::EvKind::Dispatch, follow->id,
                          follow->dispatches);
        }
        next = follow;
      } else {
        next = nullptr;
      }
    }
    lk.lock();
  }
  tl_worker = nullptr;
}

RunStats RealEngine::run(const std::function<void()>& main_fn) {
  TrackedHeap::instance().begin_epoch();
  StackPool::instance().begin_epoch();

#if DFTH_TRACE
  std::thread sampler;
  std::atomic<bool> sampler_stop{false};
  if (opts_.tracer) {
    obs::detail::set_tracer(opts_.tracer);
    // One lane per worker plus a shared "external" lane for bound threads
    // and engine-external callers.
    opts_.tracer->begin_run(
        opts_.nprocs + 1,
        [t0 = steady_now_ns()] { return steady_now_ns() - t0; });
  }
#endif

  Timer timer;

  Tcb* main = make_tcb(
      [&main_fn]() -> void* {
        main_fn();
        return nullptr;
      },
      Attr{}, /*is_dummy=*/false);
  main->is_main = true;
  DFTH_RACE_FORK(main, nullptr);
  {
    std::lock_guard<std::mutex> lk(mu_);
    all_tcbs_.push_back(main);
    sched_->register_thread(nullptr, main);
    main->state.store(ThreadState::Ready, std::memory_order_relaxed);
    sched_->on_ready(main, 0);
    live_ = 1;
    stats_.threads_created = 1;
    stats_.max_live_threads = 1;
  }

  workers_.resize(static_cast<std::size_t>(opts_.nprocs));
  for (int i = 0; i < opts_.nprocs; ++i) {
    workers_[static_cast<std::size_t>(i)].id = i;
  }
  for (auto& w : workers_) {
    w.thread = std::thread([this, &w] { worker_loop(w); });
  }

#if DFTH_TRACE
  if (obs::Tracer* tr = obs::tracer()) {
    std::uint64_t interval_ns = tr->config().sample_interval_ns;
    if (interval_ns == 0) interval_ns = 1'000'000;  // 1 ms
    sampler = std::thread([this, tr, interval_ns, &sampler_stop] {
      while (!sampler_stop.load(std::memory_order_acquire)) {
        obs::Sample s;
        s.ts_ns = tr->now();
        {
          std::lock_guard<std::mutex> lk(mu_);
          s.live_threads = live_;
          s.ready = static_cast<std::int64_t>(sched_->ready_count());
        }
        s.heap_bytes = TrackedHeap::instance().live_bytes();
        s.stack_bytes = StackPool::instance().live_bytes();
        tr->add_sample(s);
        std::this_thread::sleep_for(std::chrono::nanoseconds(interval_ns));
      }
    });
  }
#endif

  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return done_; });
  }
  for (auto& w : workers_) w.thread.join();
  // Worker dispatch-loop contexts are created implicitly by their first
  // save; the ucontext backend heap-allocates an impl for them.
  for (auto& w : workers_) context_destroy(&w.ctx);
  for (auto& bt : bound_threads_) bt.join();
  bound_threads_.clear();

  stats_.elapsed_us = timer.elapsed_us();
  stats_.heap_peak = TrackedHeap::instance().peak_bytes();
  stats_.stack_peak = StackPool::instance().peak_bytes();
  stats_.stacks_fresh = StackPool::instance().fresh_count();
  stats_.stacks_reused = StackPool::instance().reuse_count();
  if (auto* ws = dynamic_cast<WorkStealScheduler*>(sched_->underlying())) {
    stats_.steals = ws->steal_count();
  }

#if DFTH_TRACE
  if (obs::Tracer* tr = obs::tracer()) {
    sampler_stop.store(true, std::memory_order_release);
    sampler.join();
    tr->end_run();
    obs::detail::set_tracer(nullptr);
  }
#endif
  return stats_;
}

}  // namespace dfth
