// SimEngine: a deterministic discrete-event simulation of a p-processor
// shared-memory machine executing the user's real threaded code.
//
// Why it exists: the reproduction host has one CPU, so the paper's speedup
// and memory-vs-processors curves cannot be measured in wall-clock time.
// Every one of those measurements, however, is a function of the *schedule*
// — which thread runs where and when, how many threads are simultaneously
// live, and how much memory the resulting interleaving keeps allocated.
// SimEngine reproduces the schedule exactly: fibers execute their real code
// on the single host CPU, virtual processors carry virtual clocks, and the
// pluggable Scheduler is consulted with the same lock-serialized discipline
// as the Solaris library. Costs come from CostModel (calibrated to the
// paper's Figure 3); determinism comes from integer nanosecond clocks and
// strictly ordered event processing (min-clock processor first, ties to the
// processor holding work, then by id).
//
// Execution model: the engine owns one host context (`loop_ctx_`); a fiber
// runs until it reaches a *scheduling point* — fork, exit, block, yield, or
// memory-quota exhaustion — then switches back, leaving an event
// description and its accrued virtual costs. Between scheduling points
// fibers accrue cost through annotate_work / df_malloc / annotate_touch /
// sync operations; threads are never preempted mid-run (user-level threads
// at one priority level run to their next scheduling point, as in the
// paper's library).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"
#include "runtime/api.h"
#include "runtime/engine.h"

namespace dfth {

class SimEngine final : public Engine {
 public:
  explicit SimEngine(const RuntimeOptions& opts);
  ~SimEngine() override;

  EngineKind kind() const override { return EngineKind::Sim; }
  RunStats run(const std::function<void()>& main_fn) override;

  Tcb* current() override { return cur_; }
  Tcb* spawn(std::function<void*()> fn, const Attr& attr, bool is_dummy,
             const char* site_file, int site_line) override;
  void* join(Tcb* t) override;
  void detach(Tcb* t) override;
  void yield() override;
  void block_current(SpinLock* guard) override;
  void block_current_timed(SpinLock* guard, WaitList* list,
                           std::uint64_t timeout_ns) override;
  void wake(Tcb* t) override;
  void charge_sync_op() override;
  std::uint64_t now_ns() const override { return vnow_ns(); }
  void on_alloc(std::size_t bytes, std::int64_t fresh_bytes) override;
  void on_free(std::size_t bytes) override;
  bool uses_alloc_quota() const override;
  /// The *effective* quota: starts at opts.mem_quota and shrinks when OOM
  /// recovery degrades the run toward serial order (on_alloc_failed).
  std::size_t quota_bytes() const override { return eff_quota_; }
  bool on_alloc_failed(std::size_t bytes, int attempt) override;
  void add_work(std::uint64_t ops) override;
  void touch(const std::uint32_t* block_ids, std::size_t count) override;

 private:
  /// SyncPause is a scheduling point that does NOT preempt: the fiber stays
  /// on its processor and resumes when that processor is next up. Every
  /// synchronization operation raises it so that lock-protected side effects
  /// from virtually-concurrent threads linearize in virtual-time order —
  /// otherwise one fiber could, e.g., drain a whole shared work queue in
  /// host order while its virtual clock says others should have interleaved.
  /// OomPreempt mirrors QuotaPreempt: heap exhaustion is handled exactly
  /// like quota exhaustion (reinsert leftmost-ready, retry later), per the
  /// resilience layer's AsyncDF-style degradation.
  enum class Ev : std::uint8_t {
    None, Spawn, Exit, Block, Yield, QuotaPreempt, OomPreempt, SyncPause,
  };
  enum Cat : int { kWork = 0, kThread = 1, kMem = 2, kSync = 3, kNumCats = 4 };

  /// Tiny per-processor LRU set over application block ids (locality model).
  struct LruCache {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> slots;
    std::uint64_t tick = 0;
    std::size_t capacity = 0;
    bool touch_block(std::uint32_t id);
  };

  struct VProc {
    std::uint64_t clock_ns = 0;
    Tcb* running = nullptr;
    Breakdown bd;
    LruCache cache;
    /// Idle ns accumulated since this lane last did anything; consumed (and
    /// reset) by the next dispatch as its dispatch-gap measurement.
    std::uint64_t pending_gap_ns = 0;
  };

  /// A timed wait's timer entry: fires at deadline_ns unless the waiter was
  /// claimed (popped from `list` under `guard`) by a waker first.
  struct SimSleeper {
    std::uint64_t deadline_ns = 0;
    Tcb* t = nullptr;
    SpinLock* guard = nullptr;
    WaitList* list = nullptr;
  };

  static void fiber_entry(void* arg);

  Tcb* make_tcb(std::function<void*()> fn, const Attr& attr, bool is_dummy);
  /// Degraded spawn: no stack/context could be acquired, so the child runs
  /// to completion right here on the parent's stack (legal: that is the
  /// serial depth-first order).
  Tcb* run_inline(Tcb* child);
  void charge(Cat cat, double us);
  std::uint64_t vnow_ns() const;
  /// Sum of the not-yet-applied fiber charges: the profiler's span edges
  /// take it as the "uncharged work" offset so fiber-context edges are exact.
  std::uint64_t pend_total_ns() const {
    return pend_ns_[kWork] + pend_ns_[kThread] + pend_ns_[kMem] + pend_ns_[kSync];
  }
  void switch_to_loop();
  void fire_due_sleepers(VProc& vp, int pid);
  void cancel_sleeper(Tcb* t);
  /// Best-effort crash dump through resil::dump_flight_recorder.
  void dump_flight(const char* reason);

  void sim_loop();
  int pick_proc() const;
  void apply_pending(VProc& vp);
  void attempt_dispatch(VProc& vp, int pid);
  void handle_event(VProc& vp, int pid);
  void sched_lock_acquire(VProc& vp);  ///< domain-0 convenience overload
  /// Serializes queue ops within the scheduler's lock domain for `proc`,
  /// charging lock wait to vp (paper §6: the global list's lock; the
  /// clustered scheduler gets one lock per SMP).
  void sched_lock_acquire(VProc& vp, int proc);
  void make_ready(VProc& vp, int pid, Tcb* t);
  /// Deadline check at a dispatch: fires `t`'s cancel token (once per token)
  /// when the virtual clock has passed its deadline, and returns the
  /// kDispatchDeadline flag to fold into the Dispatch record's `b`.
  /// Cooperative — the fiber still runs; its body polls
  /// dfth::cancel_requested() and drains.
  std::uint64_t expire_on_dispatch(Tcb* t, int pid, std::uint64_t now);
  [[noreturn]] void report_deadlock();

  // Simulated stack pool (Solaris stack caching): maps simulated stack size
  // to the number of cached stacks; tracks mapped-bytes footprint.
  double sim_stack_acquire_us(std::size_t bytes);
  void sim_stack_release(std::size_t bytes);

  /// Records a time-series sample (ready depth, stack footprint) if the
  /// sampling instant has been reached; decimates to bound sample count.
  void maybe_sample(std::uint64_t now_ns);
  void finish_trace(std::uint64_t completion_ns);

  RuntimeOptions opts_;
  std::unique_ptr<Scheduler> sched_;
  std::vector<VProc> procs_;
  std::vector<Tcb*> all_tcbs_;
  Context loop_ctx_;

  Tcb* cur_ = nullptr;         ///< fiber currently executing (host CPU)
  int cur_proc_ = -1;          ///< virtual processor it executes on
  bool in_fiber_ = false;
  std::uint64_t loop_now_ns_ = 0;  ///< vnow while handling events in the loop

  std::vector<std::uint64_t> lock_free_ns_;  ///< per-domain lock availability
  std::int64_t live_ = 0;
  std::uint64_t next_tid_ = 1;
  std::size_t eff_quota_ = 0;          ///< effective K (shrinks on OOM recovery)
  std::vector<SimSleeper> sleepers_;   ///< armed timed-wait timers

  std::uint64_t pend_ns_[kNumCats] = {0, 0, 0, 0};
  Ev ev_ = Ev::None;
  Tcb* ev_child_ = nullptr;
  SpinLock* ev_guard_ = nullptr;

  /// Thread birth (+1) / death (-1) events in *virtual* time. The max
  /// simultaneously-active thread count must be computed over virtual time:
  /// a fiber without internal scheduling points executes birth-to-death in
  /// one host resume, so a simulation-order counter would never see two
  /// virtually-concurrent threads alive together.
  std::vector<std::pair<std::uint64_t, std::int32_t>> live_events_;

  /// Allocation (+bytes) / free (-bytes) events in virtual time, for the
  /// same reason: the heap high-water (the paper's space metric) is the max
  /// over virtual time of the live-byte level, not the host-order peak.
  std::vector<std::pair<std::uint64_t, std::int64_t>> heap_events_;
  std::int64_t heap_initial_live_ = 0;

  /// Online time-series samples (ts / ready / stack); the exact live-thread
  /// and heap levels are filled in from the sorted event lists at run end,
  /// then everything is handed to the Tracer.
  std::vector<obs::Sample> trace_samples_;
  std::uint64_t next_sample_ns_ = 0;
  std::uint64_t sample_interval_ns_ = 0;

  std::unordered_map<std::size_t, std::uint64_t> sim_stack_pool_;
  std::int64_t sim_stack_live_ = 0;
  std::int64_t sim_stack_pooled_ = 0;
  std::int64_t sim_stack_peak_ = 0;
  std::int64_t sim_stack_touched_ = 0;  ///< resident stack bytes (pressure)

  RunStats stats_;
};

}  // namespace dfth
