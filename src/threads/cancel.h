// Cooperative cancellation token — the unit of deadline propagation for the
// serving subsystem (src/serve/) and for any caller that wants to abandon a
// spawn subtree.
//
// A token is attached to a root spawn via Attr::cancel and inherited by
// every descendant (the engine copies the parent's pointer at spawn when the
// child's Attr does not set its own). Cancellation is *cooperative*: firing
// the token never skips a fiber's body or unwinds its stack — a never-run
// child would deadlock peers waiting on a barrier, and unwinding across a
// context switch is unrecoverable. Instead:
//
//   * the engine flips `cancelled` at dispatch time once `deadline_ns` has
//     passed on the engine clock (virtual ns in Sim, steady ns in Real), and
//   * fibers poll dfth::cancel_requested() at author-chosen safe points
//     (typically before spawning children) and early-return, so an expired
//     request's subtree drains in O(live fibers) dispatches while every
//     already-spawned fiber still reaches its joins and barriers.
//
// Both the flip and every poll are logged replay decisions (EvKind::
// CancelFire / CancelCheck), so a recorded run's control flow is pinned even
// though the underlying flag read races with the timer.
#pragma once

#include <atomic>
#include <cstdint>

namespace dfth {

struct CancelToken {
  /// Set once by the engine (deadline expiry at dispatch) or by the owner
  /// (explicit cancel); never cleared for the token's lifetime.
  std::atomic<bool> cancelled{false};

  /// Absolute engine-clock deadline (dfth::now_ns() units); 0 = none. Must
  /// be fixed before the token is attached to a spawn — the engine reads it
  /// without synchronization at every dispatch.
  std::uint64_t deadline_ns = 0;

  /// Optional caller-owned live-byte counter: every df_malloc/df_free by a
  /// fiber carrying this token adds/subtracts its tracked size here. The
  /// serving admission controller uses it to observe per-request footprint
  /// against the endpoint's certified budget.
  std::atomic<std::int64_t>* alloc_charge = nullptr;

  void cancel() { cancelled.store(true, std::memory_order_release); }
  bool is_cancelled() const {
    return cancelled.load(std::memory_order_acquire);
  }
};

}  // namespace dfth
