// C++ glue for the assembly context switch (see context_x86_64.S).
#ifndef DFTH_USE_UCONTEXT

#include <cstdint>
#include <cstring>

#include "analyze/san_fibers.h"
#include "threads/context.h"
#include "util/check.h"

extern "C" {
void dfth_asm_switch(void** save_sp, void* restore_sp);
void dfth_asm_trampoline();
}

namespace dfth {
namespace {

// Offsets (in 8-byte words) within the saved frame, matching the .S layout.
// sp -> [fpctl][r15][r14][r13][r12][rbx][rbp][retaddr]
constexpr int kFrameWords = 8;
constexpr int kSlotFpCtl = 0;
constexpr int kSlotR13 = 3;  // seeded with the entry argument
constexpr int kSlotR12 = 4;  // seeded with the entry function
constexpr int kSlotRet = 7;

}  // namespace

void context_make(Context* ctx, void* stack_lo, void* stack_hi, FiberEntry entry,
                  void* arg) {
  DFTH_CHECK(stack_hi > stack_lo);
  // Place the fabricated frame so that the "return address" slot sits at a
  // 16-aligned address; after the trampoline realigns rsp this guarantees a
  // conformant call into `entry`.
  auto top = reinterpret_cast<std::uintptr_t>(stack_hi);
  top &= ~static_cast<std::uintptr_t>(15);
  top -= 64;  // headroom above the frame
  auto* frame = reinterpret_cast<std::uint64_t*>(top) - kFrameWords;
  std::memset(frame, 0, kFrameWords * sizeof(std::uint64_t));

  // Capture the caller's FP control state so new fibers inherit it.
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  // The .S file loads mxcsr from (rsp) and fcw from 4(rsp): pack mxcsr into
  // the low 4 bytes and fcw into the next 2.
  frame[kSlotFpCtl] = static_cast<std::uint64_t>(mxcsr) |
                      (static_cast<std::uint64_t>(fcw) << 32);

#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)
  // Route the first activation through the sanitizer entry shim so ASan/TSan
  // see the switch completed before any user frame runs.
  san::fiber_made(ctx, stack_lo, stack_hi);
  ctx->san.entry = entry;
  ctx->san.entry_arg = arg;
  entry = &san::entry_shim;
  arg = ctx;
#endif
  frame[kSlotR12] = reinterpret_cast<std::uint64_t>(entry);
  frame[kSlotR13] = reinterpret_cast<std::uint64_t>(arg);
  frame[kSlotRet] = reinterpret_cast<std::uint64_t>(&dfth_asm_trampoline);
  ctx->sp = frame;
}

void context_switch(Context* save, Context* restore) {
#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)
  san::pre_switch(save, restore);
  dfth_asm_switch(&save->sp, restore->sp);
  san::post_switch(save);
#else
  dfth_asm_switch(&save->sp, restore->sp);
#endif
}

void context_switch_final(Context* dying, Context* restore) {
#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)
  san::pre_final_switch(restore);
#endif
  dfth_asm_switch(&dying->sp, restore->sp);
  DFTH_CHECK_MSG(false, "finalized fiber context resumed");
}

void context_finalize(Context* ctx) {
#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)
  san::fiber_released(ctx);
#else
  (void)ctx;
#endif
}

void context_destroy(Context* ctx) {
  context_finalize(ctx);
  ctx->sp = nullptr;
}

}  // namespace dfth

#endif  // !DFTH_USE_UCONTEXT
