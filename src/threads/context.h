// Fiber context switching — the mechanism that makes user-level threads
// cheap (the paper's Figure 3 contrasts ~20 µs user-level thread creation
// with kernel-thread costs an order of magnitude higher).
//
// Two implementations, selected at build time:
//  * x86-64 System V assembly (default): saves/restores only the callee-saved
//    registers plus the FP control words; a switch is ~20 instructions and
//    never enters the kernel.
//  * ucontext(3) (-DDFTH_USE_UCONTEXT=1): portable but slow, since glibc's
//    swapcontext makes a sigprocmask system call per switch. This mirrors
//    the kernel-involvement cost gap the paper describes.
//
// A Context is opaque; for the assembly version it is just the fiber's saved
// stack pointer. Switching to a freshly made context enters `entry(arg)` on
// the given stack; `entry` must never return (fibers exit through the
// engine, which switches away for the last time).
#pragma once

#include <cstddef>

namespace dfth {

using FiberEntry = void (*)(void* arg);

// Sanitizer bookkeeping carried by every context (see analyze/san_fibers.h).
// In non-sanitizer builds the fields are never read or written after
// initialization, so they cost four pointers of storage and nothing else.
struct ContextSanState {
  const void* stack_bottom = nullptr;  ///< fiber stack low address (lo..lo+bytes)
  std::size_t stack_bytes = 0;
  void* asan_fake_stack = nullptr;     ///< ASan fake-stack handle across a switch
  void* tsan_fiber = nullptr;          ///< TSan fiber (owned iff tsan_fiber_owned)
  bool tsan_fiber_owned = false;
  FiberEntry entry = nullptr;          ///< original entry, when shimmed
  void* entry_arg = nullptr;
};

#ifndef DFTH_USE_UCONTEXT

struct Context {
  void* sp = nullptr;
  ContextSanState san;
};

#else

struct ContextImpl;  // wraps ucontext_t
struct Context {
  ContextImpl* impl = nullptr;
  ContextSanState san;
};

#endif

/// Prepares `ctx` so that switching to it calls entry(arg) on the stack
/// [stack_lo, stack_hi). The stack must stay alive until the fiber is done.
void context_make(Context* ctx, void* stack_lo, void* stack_hi, FiberEntry entry,
                  void* arg);

/// Saves the current execution state into *save and resumes *restore.
/// Returns (into *save) when something later switches back to it.
void context_switch(Context* save, Context* restore);

/// Last switch out of a fiber that will never resume (its entry is done).
/// Identical to context_switch except that sanitizer builds tear down the
/// dying fiber's ASan fake stack instead of preserving it. `dying` is still
/// written (the engine owns the Tcb until cleanup) but must not be resumed.
void context_switch_final(Context* dying, Context* restore);

/// Releases sanitizer state of an exited (or never-started) fiber context.
/// Must not be called on the context currently executing. Safe to call more
/// than once; a no-op outside sanitizer builds.
void context_finalize(Context* ctx);

/// Releases any heap state behind ctx (no-op for the assembly version).
void context_destroy(Context* ctx);

}  // namespace dfth
