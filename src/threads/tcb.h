// Thread control block: one per user-level thread, shared by every engine
// and scheduler. Intrusive links keep scheduler and wait-queue operations
// allocation-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/order_list.h"
#include "space/stack_pool.h"
#include "threads/attr.h"
#include "threads/cancel.h"
#include "threads/context.h"
#include "util/spinlock.h"

namespace dfth {

enum class ThreadState : std::uint8_t {
  Embryo,   ///< created, never yet dispatched
  Ready,    ///< runnable, waiting in the scheduler
  Running,  ///< executing on some (virtual) processor
  Blocked,  ///< waiting on a join or a synchronization object
  Done,     ///< exited
};

const char* to_string(ThreadState state);

struct Tcb {
  explicit Tcb(std::uint64_t id_in) : id(id_in) {}

  Tcb(const Tcb&) = delete;
  Tcb& operator=(const Tcb&) = delete;

  // -- identity & program ---------------------------------------------------
  std::uint64_t id = 0;
  Attr attr;
  std::function<void*()> entry;
  void* result = nullptr;
  bool is_dummy = false;  ///< δ no-op thread inserted before a large alloc
  bool is_main = false;
  /// Spawn call site (static storage duration; from std::source_location in
  /// dfth::spawn). Keys the work/span profiler's per-site attribution;
  /// always present so Tcb layout is flag-independent.
  const char* site_file = nullptr;
  int site_line = 0;

  // -- execution state -------------------------------------------------------
  std::atomic<ThreadState> state{ThreadState::Embryo};
  Context ctx;
  Stack stack;

  // -- join/exit protocol (guarded by join_lock in the real engine) ----------
  SpinLock join_lock;
  Tcb* joiner = nullptr;   ///< thread blocked in join() on this thread
  bool finished = false;   ///< entry has returned / exit was called
  bool detached = false;
  bool joined = false;

  // -- scheduler state --------------------------------------------------------
  Tcb* parent = nullptr;
  /// Cancellation scope this fiber runs under (threads/cancel.h): the attr's
  /// token if set, else the parent's at spawn time. Null outside any scope.
  CancelToken* cancel = nullptr;
  OrderNode order;          ///< placeholder in the AsyncDF serial-order list
  std::int64_t quota = 0;   ///< remaining memory quota for this scheduling
  int home_proc = 0;        ///< policy data: WS deque / clustered SMP id
  Tcb* sched_next = nullptr;  ///< intrusive link for FIFO/LIFO/deque storage

  // -- wait queues ------------------------------------------------------------
  Tcb* wait_next = nullptr;  ///< intrusive link while blocked on a sync object
  bool timed_out = false;    ///< set by the engine timer when a timed wait
                             ///< expired before a waker claimed this thread;
                             ///< read (and reset) by the sync primitive after
                             ///< block_current_timed returns

  // -- simulation state --------------------------------------------------------
  std::uint64_t ready_at_ns = 0;   ///< virtual time at which it became runnable
  std::uint64_t dispatches = 0;    ///< times scheduled (stats)

  // -- thread-specific data (pthread_key_t equivalent) -------------------------
  std::vector<void*> tls;

  // -- correctness analysis (src/analyze/; updated only in DFTH_VALIDATE /
  //    DFTH_RACE builds, but always present so layout is flag-independent) ---
  std::vector<const void*> held_locks;  ///< locks held (exclusive or read
                                        ///< mode), in acquire order
  std::vector<std::uint64_t> race_vc;   ///< happens-before vector clock,
                                        ///< index = fiber id (race_detector)
  std::int64_t audit_alloc_since_dispatch = 0;  ///< df_malloc bytes since last pick
  std::uint64_t audit_dummy_credit = 0;  ///< δ dummies forked, not yet consumed
};

/// Intrusive FIFO of blocked threads (waiters on a mutex/condvar/semaphore).
class WaitList {
 public:
  bool empty() const { return head_ == nullptr; }

  void push(Tcb* t) {
    t->wait_next = nullptr;
    if (tail_) {
      tail_->wait_next = t;
    } else {
      head_ = t;
    }
    tail_ = t;
  }

  Tcb* pop() {
    Tcb* t = head_;
    if (t) {
      head_ = t->wait_next;
      if (!head_) tail_ = nullptr;
      t->wait_next = nullptr;
    }
    return t;
  }

  /// Removes an arbitrary waiter (condvar wait cancellation); returns whether
  /// the thread was present.
  bool remove(Tcb* t);

 private:
  Tcb* head_ = nullptr;
  Tcb* tail_ = nullptr;
};

}  // namespace dfth
