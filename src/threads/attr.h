// Thread attributes — the subset of pthread_attr_t the paper exercises.
#pragma once

#include <cstddef>

namespace dfth {

struct CancelToken;

/// Number of distinct priority levels (POSIX requires >= 32 for the realtime
/// policies; 8 is plenty for the experiments and keeps per-level structures
/// cheap). Higher value = scheduled first, as in the Pthreads realtime
/// policies the paper's scheduler coexists with.
inline constexpr int kNumPriorities = 8;

struct Attr {
  /// Requested stack size in bytes; 0 means "runtime default" (the knob the
  /// paper tunes in §4 item 3: Solaris defaults to 1 MB, their fix is 8 KB).
  std::size_t stack_size = 0;

  /// Bound threads get a dedicated kernel thread ("bound to an LWP" in
  /// Solaris terms) and are scheduled by the OS, not by our scheduler.
  bool bound = false;

  /// Detached threads release their resources at exit; they cannot be joined.
  bool detached = false;

  /// Priority level in [0, kNumPriorities); runnable threads at a higher
  /// level are always dispatched before lower levels.
  int priority = 0;

  /// Cooperative cancellation scope (threads/cancel.h). When null the child
  /// inherits its parent's token, so a request's deadline propagates through
  /// the whole spawn subtree; set it only on a root spawn that starts a new
  /// scope. Caller-owned; must outlive every fiber carrying it.
  CancelToken* cancel = nullptr;
};

}  // namespace dfth
