// Portable ucontext(3) implementation of the fiber context interface.
// Slower than the assembly path (glibc swapcontext issues a sigprocmask
// system call per switch) but useful on non-x86-64 hosts and as a
// correctness oracle for the assembly version.
#ifdef DFTH_USE_UCONTEXT

#include <ucontext.h>

#include <cstdint>

#include "analyze/san_fibers.h"
#include "threads/context.h"
#include "util/check.h"

namespace dfth {

struct ContextImpl {
  ucontext_t uc;
};

namespace {

// makecontext only passes ints portably; split the pointer into two words.
void trampoline(unsigned hi_entry, unsigned lo_entry, unsigned hi_arg, unsigned lo_arg) {
  auto entry = reinterpret_cast<FiberEntry>(
      (static_cast<std::uintptr_t>(hi_entry) << 32) | lo_entry);
  void* arg = reinterpret_cast<void*>((static_cast<std::uintptr_t>(hi_arg) << 32) | lo_arg);
  entry(arg);
  DFTH_CHECK_MSG(false, "fiber entry returned");
}

ContextImpl* ensure_impl(Context* ctx) {
  if (!ctx->impl) ctx->impl = new ContextImpl();
  return ctx->impl;
}

}  // namespace

void context_make(Context* ctx, void* stack_lo, void* stack_hi, FiberEntry entry,
                  void* arg) {
  ContextImpl* impl = ensure_impl(ctx);
  DFTH_CHECK(getcontext(&impl->uc) == 0);
  impl->uc.uc_stack.ss_sp = stack_lo;
  impl->uc.uc_stack.ss_size =
      static_cast<std::size_t>(static_cast<char*>(stack_hi) - static_cast<char*>(stack_lo));
  impl->uc.uc_link = nullptr;
#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)
  // Route the first activation through the sanitizer entry shim so ASan/TSan
  // see the switch completed before any user frame runs.
  san::fiber_made(ctx, stack_lo, stack_hi);
  ctx->san.entry = entry;
  ctx->san.entry_arg = arg;
  entry = &san::entry_shim;
  arg = ctx;
#endif
  const auto entry_bits = reinterpret_cast<std::uintptr_t>(entry);
  const auto arg_bits = reinterpret_cast<std::uintptr_t>(arg);
  makecontext(&impl->uc, reinterpret_cast<void (*)()>(trampoline), 4,
              static_cast<unsigned>(entry_bits >> 32),
              static_cast<unsigned>(entry_bits & 0xffffffffu),
              static_cast<unsigned>(arg_bits >> 32),
              static_cast<unsigned>(arg_bits & 0xffffffffu));
}

void context_switch(Context* save, Context* restore) {
  ContextImpl* save_impl = ensure_impl(save);
  DFTH_CHECK(restore->impl != nullptr);
#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)
  san::pre_switch(save, restore);
  DFTH_CHECK(swapcontext(&save_impl->uc, &restore->impl->uc) == 0);
  san::post_switch(save);
#else
  DFTH_CHECK(swapcontext(&save_impl->uc, &restore->impl->uc) == 0);
#endif
}

void context_switch_final(Context* dying, Context* restore) {
  ContextImpl* dying_impl = ensure_impl(dying);
  DFTH_CHECK(restore->impl != nullptr);
#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)
  san::pre_final_switch(restore);
#endif
  DFTH_CHECK(swapcontext(&dying_impl->uc, &restore->impl->uc) == 0);
  DFTH_CHECK_MSG(false, "finalized fiber context resumed");
}

void context_finalize(Context* ctx) {
#if defined(DFTH_ASAN_ENABLED) || defined(DFTH_TSAN_ENABLED)
  san::fiber_released(ctx);
#else
  (void)ctx;
#endif
}

void context_destroy(Context* ctx) {
  context_finalize(ctx);
  delete ctx->impl;
  ctx->impl = nullptr;
}

}  // namespace dfth

#endif  // DFTH_USE_UCONTEXT
