#include "threads/tcb.h"

namespace dfth {

const char* to_string(ThreadState state) {
  switch (state) {
    case ThreadState::Embryo: return "embryo";
    case ThreadState::Ready: return "ready";
    case ThreadState::Running: return "running";
    case ThreadState::Blocked: return "blocked";
    case ThreadState::Done: return "done";
  }
  return "?";
}

bool WaitList::remove(Tcb* t) {
  Tcb* prev = nullptr;
  for (Tcb* cur = head_; cur; prev = cur, cur = cur->wait_next) {
    if (cur != t) continue;
    if (prev) {
      prev->wait_next = cur->wait_next;
    } else {
      head_ = cur->wait_next;
    }
    if (tail_ == cur) tail_ = prev;
    cur->wait_next = nullptr;
    return true;
  }
  return false;
}

}  // namespace dfth
